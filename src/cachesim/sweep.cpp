#include "cachesim/sweep.hpp"

#include <algorithm>
#include <bit>
#include <exception>
#include <memory>
#include <mutex>
#include <utility>

#include "support/check.hpp"
#include "support/failpoints.hpp"

namespace sdlo::cachesim {

namespace {

using trace::Access;
using trace::Run;

/// Internal control-flow exception: thrown by a governed walk sink at a
/// run-group boundary to stop the walk, caught by feed_units. Never
/// escapes this translation unit.
struct AbortWalk {};

/// Estimated bytes per footprint line of the dense tables, used to size
/// MemoryBudget reservations. MultiLruStackUnit: node_of_ (int32) + Node
/// (2x int32) + seg_ (uint8). CacheUnit's dense LruCache: node_of_ (int32).
constexpr std::uint64_t kStackBytesPerLine = 13;
constexpr std::uint64_t kLruBytesPerLine = 4;

/// One independently simulatable consumer of the trace. Units accept both
/// delivery shapes; for a given walk exactly one of them is used.
class SweepUnit {
 public:
  virtual ~SweepUnit() = default;
  virtual void consume(const Access* a, std::size_t n) = 0;
  virtual void consume_runs(const Run* g, std::size_t nrefs) = 0;
  /// Writes this unit's SimResults into their `configs`-order slots.
  virtual void finish(std::vector<SimResult>& out) const = 0;

  /// Marks every result of this unit as a budget-truncated prefix.
  void set_truncated() { completeness_ = Completeness::kTruncated; }

  /// Ties a successful dense-table reservation to this unit's lifetime.
  void hold(MemoryReservation r) { reservation_ = std::move(r); }

 protected:
  Completeness completeness_ = Completeness::kComplete;

 private:
  MemoryReservation reservation_;
};

void check_line_geometry(const SweepConfig& c) {
  SDLO_CHECK(c.capacity_elems > 0, "sweep capacity must be positive");
  SDLO_CHECK(c.line_elems > 0 &&
                 std::has_single_bit(
                     static_cast<std::uint64_t>(c.line_elems)),
             "sweep line size must be a positive power of two");
  SDLO_CHECK(c.capacity_elems % c.line_elems == 0,
             "sweep capacity must be a whole number of lines");
}

/// Lines prefetched ahead of the current element in strided loops.
constexpr std::uint64_t kPrefetchAhead = 8;

/// Marker-augmented LRU stack: one pass, exact misses for every capacity of
/// one line-size group (Mattson's inclusion property). The stack is a
/// doubly-linked list over an arena; markers[j] pins the node at stack
/// position cap[j]; a dense side array carries, per node, the index of the
/// capacity segment its position falls in, so one dense-table load
/// classifies an access against all capacities and each stack rotation
/// touches only the boundary nodes.
///
/// The address map is direct-indexed: line indices are dense in
/// [0, footprint_lines), so node_of_[line] replaces the PR 1 hash table.
///
/// Run groups are classified in bulk where the stack provably repeats:
///  * a single-run group whose tail stays on one line (stride 0, or
///    |stride| < line_elems between line crossings) — every access after
///    the first hits the head of the stack, i.e. segment 0, and leaves the
///    stack untouched;
///  * a "pinned" group, every member run confined to one line — after the
///    first full iteration the stack's top-of-stack order is the group's
///    last-occurrence order, a fixed point of the iteration, so each
///    reference's stack distance (hence segment) is identical for every
///    iteration >= 1: simulate iterations 0 and 1 per element, then
///    bulk-account the remaining count-2 repeats.
/// Anything else decompresses to exact per-element steps (with the address
/// table prefetched ahead).
class MultiLruStackUnit final : public SweepUnit {
 public:
  /// `slots` pairs each distinct capacity (ascending, in lines) with the
  /// `configs` indices it answers. `footprint_lines` is the exact dense
  /// address-table size (CompiledProgram::footprint_lines).
  MultiLruStackUnit(std::vector<std::int64_t> caps_lines,
                    std::vector<std::vector<std::size_t>> slots,
                    std::int64_t line_elems, std::int32_t num_sites,
                    std::uint64_t footprint_lines)
      : caps_(std::move(caps_lines)),
        slots_(std::move(slots)),
        line_elems_(line_elems),
        shift_(std::countr_zero(static_cast<std::uint64_t>(line_elems))),
        num_sites_(num_sites),
        ks_(caps_.size() + 1),
        markers_(caps_.size(), -1),
        node_of_(static_cast<std::size_t>(footprint_lines), -1),
        buckets_(static_cast<std::size_t>(num_sites) * ks_, 0),
        cold_by_site_(static_cast<std::size_t>(num_sites), 0) {
    SDLO_CHECK(caps_.size() < 255,
               "sweep supports at most 254 distinct capacities per line size");
    nodes_.reserve(static_cast<std::size_t>(footprint_lines));
    seg_.reserve(static_cast<std::size_t>(footprint_lines));
  }

  void consume(const Access* a, std::size_t n) override {
    for (std::size_t i = 0; i < n; ++i) {
      step(a[i].addr >> shift_, a[i].site);
    }
    accesses_ += n;
  }

  void consume_runs(const Run* g, std::size_t nrefs) override {
    const std::uint64_t count = g[0].count;
    accesses_ += count * nrefs;
    if (count == 1) {  // statement group (any width): one step per ref
      for (std::size_t r = 0; r < nrefs; ++r) {
        step(g[r].base >> shift_, g[r].site);
      }
      return;
    }
    if (nrefs == 1) {
      consume_single(g[0]);
      return;
    }
    bool pinned = true;
    for (std::size_t r = 0; r < nrefs; ++r) {
      if ((g[r].base >> shift_) != (g[r].at(count - 1) >> shift_)) {
        pinned = false;
        break;
      }
    }
    if (pinned) {
      consume_pinned_group(g, nrefs);
      return;
    }
    if (consume_disjoint_group(g, nrefs)) return;
    // Mixed-stride group: exact per-element decompression, iteration-major,
    // with next iteration's table entries prefetched.
    SDLO_EXPECTS(nrefs <= trace::kMaxLeafRefs);
    std::uint64_t addrs[trace::kMaxLeafRefs];
    for (std::size_t r = 0; r < nrefs; ++r) addrs[r] = g[r].base;
    for (std::uint64_t v = 0; v < count; ++v) {
      const bool more = v + 1 < count;
      for (std::size_t r = 0; r < nrefs; ++r) {
        const std::uint64_t a = addrs[r];
        addrs[r] = a + static_cast<std::uint64_t>(g[r].stride);
        if (more) __builtin_prefetch(&node_of_[addrs[r] >> shift_]);
        step(a >> shift_, g[r].site);
      }
    }
  }

  void finish(std::vector<SimResult>& out) const override {
    const std::size_t k = caps_.size();
    for (std::size_t r = 0; r < k; ++r) {
      for (std::size_t slot : slots_[r]) {
        SimResult& res = out[slot];
        res.accesses = accesses_;
        res.completeness = completeness_;
        res.misses = 0;
        res.misses_by_site.assign(static_cast<std::size_t>(num_sites_), 0);
        for (std::int32_t s = 0; s < num_sites_; ++s) {
          std::uint64_t m = cold_by_site_[static_cast<std::size_t>(s)];
          const std::uint64_t* b =
              buckets_.data() + static_cast<std::size_t>(s) * ks_;
          for (std::size_t seg = r + 1; seg <= k; ++seg) m += b[seg];
          res.misses_by_site[static_cast<std::size_t>(s)] = m;
          res.misses += m;
        }
      }
    }
  }

 private:
  struct Node {
    std::int32_t prev = -1;  // towards the MRU end
    std::int32_t next = -1;  // towards the LRU end
  };

  /// Feeds one line access; returns the segment it hit at, or -1 when cold.
  std::int32_t step(std::uint64_t line, std::int32_t site) {
    const std::size_t k = caps_.size();
    std::int32_t ni = node_of_[line];
    if (ni == head_ && ni >= 0) {
      // Head hit: segment 0 by construction, rotation a no-op.
      ++buckets_[static_cast<std::size_t>(site) * ks_];
      return 0;
    }
    if (ni < 0) {  // cold: push a new node on top of the stack
      ni = static_cast<std::int32_t>(nodes_.size());
      nodes_.push_back(Node{-1, head_});
      seg_.push_back(0);
      node_of_[line] = ni;
      if (head_ >= 0) nodes_[static_cast<std::size_t>(head_)].prev = ni;
      head_ = ni;
      if (tail_ < 0) tail_ = ni;
      ++size_;
      ++cold_by_site_[static_cast<std::size_t>(site)];
      // Every resident position grew by one: each boundary node crosses
      // into the next segment; stacks that just reached cap[j] gain their
      // marker at the tail.
      for (std::size_t j = 0; j < k; ++j) {
        if (markers_[j] >= 0) {
          const auto m = static_cast<std::size_t>(markers_[j]);
          seg_[m] = static_cast<std::uint8_t>(j + 1);
          markers_[j] = nodes_[m].prev;
        } else if (size_ == caps_[j]) {
          markers_[j] = tail_;
        }
      }
      return -1;
    }

    Node& x = nodes_[static_cast<std::size_t>(ni)];
    const auto s = static_cast<std::size_t>(seg_[static_cast<std::size_t>(ni)]);
    // The access hits every capacity of segment >= s, misses every smaller
    // one; segment 0 (position <= smallest capacity) misses none.
    ++buckets_[static_cast<std::size_t>(site) * ks_ + s];
    // Rotating x to the top shifts positions 1..pos(x)-1 down by one: the
    // node sitting exactly on each boundary below x crosses it. The new
    // boundary node is its predecessor — or x itself when the boundary is
    // position 1 (cap[j] == 1) and the old boundary node was the head.
    for (std::size_t j = 0; j < s; ++j) {
      const auto m = static_cast<std::size_t>(markers_[j]);
      seg_[m] = static_cast<std::uint8_t>(j + 1);
      markers_[j] = nodes_[m].prev >= 0 ? nodes_[m].prev : ni;
    }
    // If x itself sat on boundary s, its predecessor shifts onto it.
    if (s < k && markers_[s] == ni) markers_[s] = x.prev;
    // Unlink (x is not the head, so x.prev exists).
    nodes_[static_cast<std::size_t>(x.prev)].next = x.next;
    if (x.next >= 0) {
      nodes_[static_cast<std::size_t>(x.next)].prev = x.prev;
    } else {
      tail_ = x.prev;
    }
    // Push front.
    x.prev = -1;
    x.next = head_;
    nodes_[static_cast<std::size_t>(head_)].prev = ni;
    head_ = ni;
    seg_[static_cast<std::size_t>(ni)] = 0;
    return static_cast<std::int32_t>(s);
  }

  /// A lone strided run. After step(line) the line sits on top of the
  /// stack, so every further access to the same line hits segment 0 and
  /// leaves the stack untouched — same-line tails are bulk-accounted.
  void consume_single(const Run& run) {
    const std::uint64_t count = run.count;
    const std::uint64_t mag = static_cast<std::uint64_t>(
        run.stride < 0 ? -run.stride : run.stride);
    if (mag == 0) {
      step(run.base >> shift_, run.site);
      buckets_[static_cast<std::size_t>(run.site) * ks_] += count - 1;
      return;
    }
    if (mag < static_cast<std::uint64_t>(line_elems_)) {
      // Sub-line stride: collapse the consecutive same-line accesses
      // between line crossings.
      std::uint64_t v = 0;
      std::uint64_t a = run.base;
      while (v < count) {
        const std::uint64_t line = a >> shift_;
        std::uint64_t span;
        if (run.stride > 0) {
          span = (((line + 1) << shift_) - a + mag - 1) / mag;
        } else {
          span = (a - (line << shift_)) / mag + 1;
        }
        if (span > count - v) span = count - v;
        step(line, run.site);
        if (span > 1) {
          buckets_[static_cast<std::size_t>(run.site) * ks_] += span - 1;
        }
        v += span;
        a += span * static_cast<std::uint64_t>(run.stride);
      }
      return;
    }
    // Every element lands on a fresh line: exact per-element steps with the
    // address table prefetched ahead.
    std::uint64_t a = run.base;
    const auto stride = static_cast<std::uint64_t>(run.stride);
    for (std::uint64_t v = 0; v < count; ++v) {
      if (v + kPrefetchAhead < count) {
        __builtin_prefetch(&node_of_[(a + kPrefetchAhead * stride) >>
                                     shift_]);
      }
      step(a >> shift_, run.site);
      a += stride;
    }
  }

  /// A group whose members each stay on one line for the whole loop. The
  /// post-iteration stack order (last-occurrence order of the group's
  /// lines) is a fixed point, so all iterations >= 1 replay the exact same
  /// per-reference stack distances: run iterations 0 and 1 per element,
  /// record the segments iteration 1 hit at, and bulk-account the rest.
  void consume_pinned_group(const Run* g, std::size_t nrefs) {
    SDLO_EXPECTS(nrefs <= trace::kMaxLeafRefs);
    const std::uint64_t count = g[0].count;
    for (std::size_t r = 0; r < nrefs; ++r) {
      step(g[r].base >> shift_, g[r].site);
    }
    std::int32_t segs[trace::kMaxLeafRefs];
    for (std::size_t r = 0; r < nrefs; ++r) {
      segs[r] = step(g[r].base >> shift_, g[r].site);
      SDLO_EXPECTS(segs[r] >= 0);  // iteration 0 touched every line
    }
    if (count == 2) return;
    for (std::size_t r = 0; r < nrefs; ++r) {
      buckets_[static_cast<std::size_t>(g[r].site) * ks_ +
               static_cast<std::size_t>(segs[r])] += count - 2;
    }
  }

  /// The general mixed-group bulk path. When, after collapsing refs that
  /// duplicate their predecessor's address sequence, every remaining run is
  /// either pinned to one line or strictly line-monotonic (|stride| >=
  /// line_elems), and the remaining runs' line ranges are pairwise
  /// disjoint, then for every iteration v >= 1:
  ///  * a duplicate ref re-touches the line its predecessor just left on
  ///    top of the stack — depth 1, segment 0, rotation a no-op;
  ///  * a pinned ref's reuse window holds each other remaining ref exactly
  ///    once (refs after it from iteration v-1, refs before it from
  ///    iteration v), all on distinct lines by disjointness — its depth is
  ///    statically the number of remaining refs;
  ///  * a moving ref touches a line last accessed *outside* the group, and
  ///    the set of lines above it is unchanged by skipping the pinned
  ///    reuses (the pinned lines were performed in iteration 0, hence sit
  ///    above it either way) — so stepping only the moving refs observes
  ///    the exact segments.
  /// Skipping the pinned rotations leaves their nodes sunk too deep at
  /// group end; a silent replay of the final iteration (rotations without
  /// hit accounting) restores the exact post-group stack order, which is
  /// the final iteration's lines in reverse reference order on top of the
  /// moving refs' older lines.
  ///
  /// Returns false (leaving no trace of itself) when the preconditions do
  /// not hold or the group is too small to pay for the O(refs^2)
  /// disjointness test.
  bool consume_disjoint_group(const Run* g, std::size_t nrefs) {
    const std::uint64_t count = g[0].count;
    if (count < 8) return false;
    bool dup[trace::kMaxLeafRefs];
    std::uint64_t lo[trace::kMaxLeafRefs];  // line range per non-dup ref
    std::uint64_t hi[trace::kMaxLeafRefs];
    std::size_t n_distinct = 0;
    for (std::size_t r = 0; r < nrefs; ++r) {
      dup[r] = r > 0 && g[r].base == g[r - 1].base &&
               g[r].stride == g[r - 1].stride;
      if (dup[r]) continue;
      const std::uint64_t first = g[r].base >> shift_;
      const std::uint64_t last = g[r].at(count - 1) >> shift_;
      const std::uint64_t mag = static_cast<std::uint64_t>(
          g[r].stride < 0 ? -g[r].stride : g[r].stride);
      if (first != last && mag < static_cast<std::uint64_t>(line_elems_)) {
        return false;  // line sequence revisits lines within the run
      }
      lo[r] = std::min(first, last);
      hi[r] = std::max(first, last);
      ++n_distinct;
    }
    if (n_distinct > 16) return false;
    for (std::size_t r = 0; r < nrefs; ++r) {
      if (dup[r]) continue;
      for (std::size_t q = r + 1; q < nrefs; ++q) {
        if (dup[q]) continue;
        if (lo[r] <= hi[q] && lo[q] <= hi[r]) return false;
      }
    }

    // Iteration 0 per element (duplicates are head hits at segment 0 and
    // are folded into their bulk term below).
    for (std::size_t r = 0; r < nrefs; ++r) {
      if (!dup[r]) step(g[r].base >> shift_, g[r].site);
    }
    // Bulk terms: duplicates hit segment 0 on every iteration; pinned refs
    // hit at depth n_distinct on iterations 1..count-1.
    const std::size_t pin_seg = static_cast<std::size_t>(
        std::lower_bound(caps_.begin(), caps_.end(),
                         static_cast<std::int64_t>(n_distinct)) -
        caps_.begin());
    bool moving[trace::kMaxLeafRefs];
    std::size_t n_moving = 0;
    for (std::size_t r = 0; r < nrefs; ++r) {
      if (dup[r]) {
        buckets_[static_cast<std::size_t>(g[r].site) * ks_] += count;
        moving[r] = false;
      } else if (lo[r] == hi[r]) {
        buckets_[static_cast<std::size_t>(g[r].site) * ks_ + pin_seg] +=
            count - 1;
        moving[r] = false;
      } else {
        moving[r] = true;
        ++n_moving;
      }
    }
    // Iterations 1..count-1: only the moving refs need stack surgery.
    if (n_moving > 0) {
      std::uint64_t addrs[trace::kMaxLeafRefs];
      for (std::size_t r = 0; r < nrefs; ++r) {
        addrs[r] = g[r].at(1);
      }
      for (std::uint64_t v = 1; v < count; ++v) {
        const bool more = v + 1 < count;
        for (std::size_t r = 0; r < nrefs; ++r) {
          if (!moving[r]) continue;
          const std::uint64_t a = addrs[r];
          addrs[r] = a + static_cast<std::uint64_t>(g[r].stride);
          if (more) __builtin_prefetch(&node_of_[addrs[r] >> shift_]);
          step(a >> shift_, g[r].site);
        }
      }
    }
    // Silent replay of the final iteration restores the exact stack order.
    for (std::size_t r = 0; r < nrefs; ++r) {
      if (!dup[r]) rotate_to_top(g[r].at(count - 1) >> shift_);
    }
    return true;
  }

  /// Rotates a resident line to the top of the stack with full marker and
  /// segment maintenance but no hit/miss accounting (used to repair the
  /// stack order after bulk-accounted accesses were skipped).
  void rotate_to_top(std::uint64_t line) {
    const std::size_t k = caps_.size();
    const std::int32_t ni = node_of_[line];
    SDLO_EXPECTS(ni >= 0);
    if (ni == head_) return;
    Node& x = nodes_[static_cast<std::size_t>(ni)];
    const auto s = static_cast<std::size_t>(seg_[static_cast<std::size_t>(ni)]);
    for (std::size_t j = 0; j < s; ++j) {
      const auto m = static_cast<std::size_t>(markers_[j]);
      seg_[m] = static_cast<std::uint8_t>(j + 1);
      markers_[j] = nodes_[m].prev >= 0 ? nodes_[m].prev : ni;
    }
    if (s < k && markers_[s] == ni) markers_[s] = x.prev;
    nodes_[static_cast<std::size_t>(x.prev)].next = x.next;
    if (x.next >= 0) {
      nodes_[static_cast<std::size_t>(x.next)].prev = x.prev;
    } else {
      tail_ = x.prev;
    }
    x.prev = -1;
    x.next = head_;
    nodes_[static_cast<std::size_t>(head_)].prev = ni;
    head_ = ni;
    seg_[static_cast<std::size_t>(ni)] = 0;
  }

  std::vector<std::int64_t> caps_;               // ascending, in lines
  std::vector<std::vector<std::size_t>> slots_;  // result slots per capacity
  std::int64_t line_elems_;
  int shift_;
  std::int32_t num_sites_;
  std::size_t ks_;  // bucket row stride: caps_.size() + 1 segments

  std::vector<Node> nodes_;
  std::vector<std::uint8_t> seg_;  // per-node capacity segment (parallel)
  std::int32_t head_ = -1;
  std::int32_t tail_ = -1;
  std::int64_t size_ = 0;
  std::vector<std::int32_t> markers_;

  std::vector<std::int32_t> node_of_;  // dense line -> node index, -1 empty

  std::vector<std::uint64_t> buckets_;  // [site][segment] hit-at counts
  std::vector<std::uint64_t> cold_by_site_;
  std::uint64_t accesses_ = 0;
};

/// Shared-walk fallback unit: one real cache instance per configuration,
/// consuming whole batches / run groups at a time. The LRU table is
/// direct-indexed over the program footprint (no hashing, no growth).
class CacheUnit final : public SweepUnit {
 public:
  CacheUnit(const SweepConfig& cfg, std::size_t slot, std::int32_t num_sites,
            std::uint64_t footprint_lines)
      : slot_(slot),
        misses_by_site_(static_cast<std::size_t>(num_sites), 0) {
    check_line_geometry(cfg);
    if (cfg.ways == 0) {
      shift_ = std::countr_zero(static_cast<std::uint64_t>(cfg.line_elems));
      lru_ = std::make_unique<LruCache>(cfg.capacity_elems / cfg.line_elems,
                                        footprint_lines);
    } else {
      set_assoc_ = std::make_unique<SetAssocCache>(
          cfg.capacity_elems, cfg.ways, cfg.line_elems, cfg.policy);
    }
  }

  void consume(const Access* a, std::size_t n) override {
    if (lru_) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!lru_->access(a[i].addr >> shift_)) {
          ++misses_;
          ++misses_by_site_[static_cast<std::size_t>(a[i].site)];
        }
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        if (!set_assoc_->access(a[i].addr)) {
          ++misses_;
          ++misses_by_site_[static_cast<std::size_t>(a[i].site)];
        }
      }
    }
    accesses_ += n;
  }

  void consume_runs(const Run* g, std::size_t nrefs) override {
    const std::uint64_t count = g[0].count;
    accesses_ += count * nrefs;
    if (lru_) {
      for (std::uint64_t v = 0; v < count; ++v) {
        for (std::size_t r = 0; r < nrefs; ++r) {
          if (!lru_->access(g[r].at(v) >> shift_)) {
            ++misses_;
            ++misses_by_site_[static_cast<std::size_t>(g[r].site)];
          }
        }
      }
    } else {
      for (std::uint64_t v = 0; v < count; ++v) {
        for (std::size_t r = 0; r < nrefs; ++r) {
          if (!set_assoc_->access(g[r].at(v))) {
            ++misses_;
            ++misses_by_site_[static_cast<std::size_t>(g[r].site)];
          }
        }
      }
    }
  }

  void finish(std::vector<SimResult>& out) const override {
    SimResult& res = out[slot_];
    res.accesses = accesses_;
    res.completeness = completeness_;
    res.misses = misses_;
    res.misses_by_site = misses_by_site_;
  }

 private:
  std::size_t slot_;
  int shift_ = 0;
  std::unique_ptr<LruCache> lru_;
  std::unique_ptr<SetAssocCache> set_assoc_;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
  std::vector<std::uint64_t> misses_by_site_;
};

/// One walk of the trace through `mine`, in the requested delivery shape.
/// With a governor, polls it every `poll_interval` run groups (batches in
/// kBatched mode) and stops the walk — at a group boundary, so every unit
/// holds an exact prefix simulation — when a budget trips. Units are then
/// marked truncated. Returns false on truncation.
bool feed_units(const trace::CompiledProgram& prog,
                const std::vector<SweepUnit*>& mine, trace::TraceMode mode,
                const Governor* gov) {
  const std::uint64_t interval =
      gov != nullptr && gov->poll_interval > 0 ? gov->poll_interval : 1024;
  std::uint64_t tick = 0;
  bool complete = true;
  try {
    if (mode == trace::TraceMode::kRuns) {
      prog.walk_runs([&](const Run* g, std::size_t nrefs) {
        if (gov != nullptr && ++tick >= interval) {
          tick = 0;
          if (gov->should_stop()) throw AbortWalk{};
        }
        for (auto* u : mine) u->consume_runs(g, nrefs);
      });
    } else {
      prog.walk_batched([&](const Access* a, std::size_t n) {
        if (gov != nullptr && ++tick >= interval) {
          tick = 0;
          if (gov->should_stop()) throw AbortWalk{};
        }
        for (auto* u : mine) u->consume(a, n);
      });
    }
  } catch (const AbortWalk&) {
    complete = false;
    for (auto* u : mine) u->set_truncated();
  }
  return complete;
}

/// Walks the trace through `units`: one shared walk when serial, one walk
/// per round-robin chunk of units when a pool is available.
void run_units(const trace::CompiledProgram& prog,
               std::vector<std::unique_ptr<SweepUnit>>& units,
               parallel::ThreadPool* pool, trace::TraceMode mode,
               const Governor* gov) {
  if (units.empty()) return;
  const int threads = pool ? pool->num_threads() : 1;
  if (threads <= 1 || units.size() == 1) {
    std::vector<SweepUnit*> all;
    all.reserve(units.size());
    for (auto& u : units) all.push_back(u.get());
    feed_units(prog, all, mode, gov);
    return;
  }
  const std::size_t chunks =
      std::min<std::size_t>(units.size(), static_cast<std::size_t>(threads));
  std::mutex err_mu;
  std::exception_ptr first_error;
  for (std::size_t c = 0; c < chunks; ++c) {
    pool->submit([&, c] {
      try {
        std::vector<SweepUnit*> mine;
        for (std::size_t u = c; u < units.size(); u += chunks) {
          mine.push_back(units[u].get());
        }
        feed_units(prog, mine, mode, gov);
      } catch (...) {
        std::scoped_lock lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool->wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

namespace {

/// Claims the dense address table for one unit against the governor's
/// memory budget. Returns a reservation whose ok() is false when the
/// budget denies it — or when the named failpoint injects a denial.
MemoryReservation reserve_dense(const Governor* gov, std::uint64_t bytes,
                                const char* failpoint_site) {
  if (failpoints::fail_alloc(failpoint_site)) {
    return MemoryReservation::denied();
  }
  return MemoryReservation(gov != nullptr ? gov->memory : nullptr, bytes);
}

}  // namespace

std::vector<SimResult> simulate_sweep(const trace::CompiledProgram& prog,
                                      const std::vector<SweepConfig>& configs,
                                      parallel::ThreadPool* pool,
                                      trace::TraceMode mode,
                                      const Governor* gov) {
  std::vector<SimResult> out(configs.size());
  if (configs.empty()) return out;

  std::vector<std::unique_ptr<SweepUnit>> units;
  // Group fully-associative configurations by line size: one marker stack
  // answers every capacity of a group in a single pass.
  std::vector<std::int64_t> lines_seen;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const SweepConfig& c = configs[i];
    if (c.ways != 0) {
      units.push_back(std::make_unique<CacheUnit>(
          c, i, prog.num_sites(), prog.footprint_lines(c.line_elems)));
      continue;
    }
    check_line_geometry(c);
    if (std::find(lines_seen.begin(), lines_seen.end(), c.line_elems) ==
        lines_seen.end()) {
      lines_seen.push_back(c.line_elems);
    }
  }
  for (std::int64_t line : lines_seen) {
    // Distinct capacities (in lines) ascending, each with its result slots.
    std::vector<std::pair<std::int64_t, std::size_t>> caps;
    for (std::size_t i = 0; i < configs.size(); ++i) {
      if (configs[i].ways == 0 && configs[i].line_elems == line) {
        caps.emplace_back(configs[i].capacity_elems / line, i);
      }
    }
    const std::uint64_t fp = prog.footprint_lines(line);
    MemoryReservation r =
        reserve_dense(gov, fp * kStackBytesPerLine,
                      failpoints::kSweepDenseAlloc);
    if (!r.ok()) {
      // Budget denied the dense marker stack: degrade to one hashed-table
      // CacheUnit per configuration (addr_limit 0 selects the
      // open-addressing map). Bit-identical results, O(#configs) per
      // access instead of O(1), and memory proportional to the capacities
      // rather than the footprint.
      for (const auto& [cap, slot] : caps) {
        (void)cap;
        units.push_back(std::make_unique<CacheUnit>(
            configs[slot], slot, prog.num_sites(), /*footprint_lines=*/0));
      }
      continue;
    }
    std::sort(caps.begin(), caps.end());
    std::vector<std::int64_t> distinct;
    std::vector<std::vector<std::size_t>> slots;
    for (const auto& [cap, slot] : caps) {
      if (distinct.empty() || distinct.back() != cap) {
        distinct.push_back(cap);
        slots.emplace_back();
      }
      slots.back().push_back(slot);
    }
    auto unit = std::make_unique<MultiLruStackUnit>(
        std::move(distinct), std::move(slots), line, prog.num_sites(), fp);
    unit->hold(std::move(r));
    units.push_back(std::move(unit));
  }

  run_units(prog, units, pool, mode, gov);
  for (const auto& u : units) u->finish(out);
  return out;
}

std::vector<SimResult> simulate_many(const trace::CompiledProgram& prog,
                                     const std::vector<SweepConfig>& configs,
                                     parallel::ThreadPool* pool,
                                     trace::TraceMode mode,
                                     const Governor* gov) {
  std::vector<SimResult> out(configs.size());
  if (configs.empty()) return out;
  std::vector<std::unique_ptr<SweepUnit>> units;
  units.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    check_line_geometry(configs[i]);
    std::uint64_t fp = prog.footprint_lines(configs[i].line_elems);
    MemoryReservation r;
    if (configs[i].ways == 0) {
      // Only the fully-associative path allocates a footprint-sized dense
      // table; gate it and fall back to the hashed map when denied.
      r = reserve_dense(gov, fp * kLruBytesPerLine,
                        failpoints::kSweepDenseAlloc);
      if (!r.ok()) fp = 0;
    }
    auto unit = std::make_unique<CacheUnit>(configs[i], i, prog.num_sites(),
                                            fp);
    unit->hold(std::move(r));
    units.push_back(std::move(unit));
  }
  run_units(prog, units, pool, mode, gov);
  for (const auto& u : units) u->finish(out);
  return out;
}

}  // namespace sdlo::cachesim
