// Exact LRU stack-distance profiler.
//
// Computes, for every access of a trace, its LRU stack depth (the number of
// distinct addresses touched since the previous access to the same address,
// inclusive), and accumulates a depth histogram. One pass over the trace
// then yields the miss count of a fully-associative LRU cache of *any*
// capacity: an access hits iff depth <= capacity, so
//   misses(C) = cold + sum_{d > C} hist[d].
//
// This is the efficient stack-distance computation of Almasi, Cascaval &
// Padua [ref 3 of the paper]: a Fenwick tree over access times marks, for
// each currently-resident address, its most recent access time; the depth of
// an access is a suffix count, and each access moves one mark. Times are
// periodically renumbered (compacted) so the tree stays proportional to the
// number of distinct addresses rather than the trace length.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace sdlo::cachesim {

/// Streaming exact stack-distance histogram.
class StackDistanceProfiler {
 public:
  /// `expected_addresses` sizes the internal tables (a hint; the structure
  /// grows as needed).
  explicit StackDistanceProfiler(std::size_t expected_addresses = 1 << 16);

  /// Feeds one access; returns its stack depth, or 0 for a cold (first)
  /// access.
  std::int64_t access(std::uint64_t addr);

  /// Number of cold (compulsory) first accesses.
  std::uint64_t cold_accesses() const { return cold_; }

  /// Total accesses fed.
  std::uint64_t total_accesses() const { return total_; }

  /// Depth histogram: depth -> number of accesses with that depth (cold
  /// accesses excluded; they are counted by cold_accesses()).
  const std::map<std::int64_t, std::uint64_t>& histogram() const;

  /// Misses of a fully-associative LRU cache with `capacity` elements.
  std::uint64_t misses(std::int64_t capacity) const;

  /// Distinct addresses seen so far.
  std::uint64_t distinct_addresses() const { return last_pos_.size(); }

 private:
  std::int64_t prefix_sum(std::size_t pos) const;   // sum of marks [0, pos]
  void bit_update(std::size_t pos, int delta);
  void compact();

  std::vector<std::int32_t> tree_;                  // Fenwick array
  std::size_t window_ = 0;                          // tree capacity
  std::size_t cur_ = 0;                             // next time stamp
  std::int64_t active_ = 0;                         // marks in tree
  std::unordered_map<std::uint64_t, std::uint64_t> last_pos_;
  mutable std::map<std::int64_t, std::uint64_t> hist_;
  std::uint64_t cold_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace sdlo::cachesim
