// Exact LRU stack-distance profiler.
//
// Computes, for every access of a trace, its LRU stack depth (the number of
// distinct addresses touched since the previous access to the same address,
// inclusive), and accumulates a depth histogram. One pass over the trace
// then yields the miss count of a fully-associative LRU cache of *any*
// capacity: an access hits iff depth <= capacity, so
//   misses(C) = cold + sum_{d > C} hist[d].
//
// This is the efficient stack-distance computation of Almasi, Cascaval &
// Padua [ref 3 of the paper]: a Fenwick tree over access times marks, for
// each currently-resident address, its most recent access time; the depth of
// an access is a suffix count, and each access moves one mark. Times are
// periodically renumbered (compacted) so the tree stays proportional to the
// number of distinct addresses rather than the trace length.
//
// When the caller knows an exclusive upper bound on the addresses it will
// feed (trace addresses are dense element/line indices), the last-access
// map is a direct-indexed vector sized once up front; otherwise it falls
// back to hashing. Run-compressed callers can additionally account whole
// blocks of provably-equal depths with record_repeats(), skipping the
// Fenwick work entirely.
//
// With per-site tracking enabled (enable_site_tracking), the profiler
// additionally keeps one depth histogram per access site, so the same walk
// also answers misses_by_site(C) for every capacity — the per-partition
// breakdown the validation tables need.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "cachesim/results.hpp"

namespace sdlo::cachesim {

/// Streaming exact stack-distance histogram.
class StackDistanceProfiler {
 public:
  /// `expected_addresses` sizes the internal tables (a hint; the structure
  /// grows as needed). `addr_limit`, when nonzero, promises every fed
  /// address is < addr_limit and switches the last-access map to a dense
  /// direct-indexed table.
  explicit StackDistanceProfiler(std::size_t expected_addresses = 1 << 16,
                                 std::uint64_t addr_limit = 0);

  /// Allocates per-site histograms for sites [0, num_sites); from now on
  /// access(addr, site) records into them.
  void enable_site_tracking(std::int32_t num_sites);

  /// Feeds one access; returns its stack depth, or 0 for a cold (first)
  /// access.
  std::int64_t access(std::uint64_t addr);

  /// Feeds one access attributed to `site` (requires enable_site_tracking).
  std::int64_t access(std::uint64_t addr, std::int32_t site);

  /// Bulk-accounts `n` further accesses of stack depth `depth` (>= 1)
  /// without touching the Fenwick state. Exact only when the caller proves
  /// the depths: the canonical uses are same-address repeats (depth 1 —
  /// nothing else intervenes, so the mark need not move) and steady-state
  /// iterations of a pinned run group, where every resident mark already
  /// sits in the final relative order and only timestamps would change.
  /// `site` < 0 skips per-site attribution.
  void record_repeats(std::int64_t depth, std::uint64_t n,
                      std::int32_t site = -1);

  /// Number of cold (compulsory) first accesses.
  std::uint64_t cold_accesses() const { return cold_; }

  /// Total accesses fed.
  std::uint64_t total_accesses() const { return total_; }

  /// Depth histogram: depth -> number of accesses with that depth (cold
  /// accesses excluded; they are counted by cold_accesses()).
  const std::map<std::int64_t, std::uint64_t>& histogram() const;

  /// Misses of a fully-associative LRU cache with `capacity` elements.
  std::uint64_t misses(std::int64_t capacity) const;

  /// Per-site depth histogram (requires enable_site_tracking).
  const std::map<std::int64_t, std::uint64_t>& site_histogram(
      std::int32_t site) const;

  /// Per-site cold accesses (requires enable_site_tracking).
  std::uint64_t site_cold(std::int32_t site) const;

  /// Number of sites registered by enable_site_tracking (0 if disabled).
  std::int32_t num_sites() const {
    return static_cast<std::int32_t>(site_hist_.size());
  }

  /// Distinct addresses seen so far.
  std::uint64_t distinct_addresses() const {
    return dense_last_pos_.empty() ? last_pos_.size() : distinct_;
  }

 private:
  std::int64_t prefix_sum(std::size_t pos) const;   // sum of marks [0, pos]
  void bit_update(std::size_t pos, int delta);
  void compact();
  std::int64_t record_depth(std::uint64_t prev);    // move mark, hist entry

  std::vector<std::int32_t> tree_;                  // Fenwick array
  std::size_t window_ = 0;                          // tree capacity
  std::size_t cur_ = 0;                             // next time stamp
  std::int64_t active_ = 0;                         // marks in tree
  std::unordered_map<std::uint64_t, std::uint64_t> last_pos_;
  std::vector<std::uint64_t> dense_last_pos_;       // addr -> time, or kNoPos
  std::uint64_t distinct_ = 0;                      // dense-mode population
  mutable std::map<std::int64_t, std::uint64_t> hist_;
  std::vector<std::map<std::int64_t, std::uint64_t>> site_hist_;
  std::vector<std::uint64_t> site_cold_;
  std::uint64_t cold_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace sdlo::cachesim
