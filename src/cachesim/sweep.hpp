// Batched multi-configuration cache simulation (the sweep engine).
//
// Every validation table and tile-search ablation wants the same trace
// evaluated against many cache configurations. Walking the trace once per
// configuration wastes both the trace generation and — for fully
// associative LRU — the simulation itself: by Mattson's inclusion property
// the LRU stack of a small cache is a prefix of the LRU stack of a larger
// one, so a single annotated stack answers every capacity at once.
//
// simulate_sweep() exploits this with a marker-augmented LRU stack: one
// doubly-linked stack plus one boundary marker per requested capacity.
// Each access costs O(1) hash work plus O(#capacities) pointer updates —
// no Fenwick tree, no per-capacity replay — and yields, exactly, the
// SimResult (including misses_by_site) of every fully-associative
// configuration sharing that line size. Set-associative configurations,
// which the inclusion property does not cover, fall back to
// simulate_many(): real LruCache/SetAssocCache instances fed from a single
// shared trace walk.
//
// Both entry points accept an optional parallel::ThreadPool. Independent
// simulation units (one per line-size group / per cache chunk) then run on
// worker threads, each performing its own walk of the shared
// CompiledProgram (walks are const and re-entrant).
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/sim.hpp"
#include "parallel/thread_pool.hpp"
#include "trace/walker.hpp"

namespace sdlo::cachesim {

/// One cache configuration of a sweep.
struct SweepConfig {
  /// Total capacity in elements (> 0; a multiple of line_elems).
  std::int64_t capacity_elems = 0;
  /// Line size in elements (a power of two; 1 = the paper's element model).
  std::int64_t line_elems = 1;
  /// Associativity: 0 = fully associative (single-pass marker engine);
  /// otherwise a W-way set-associative geometry (shared-walk fallback).
  int ways = 0;
  /// Replacement policy for set-associative configurations.
  Replacement policy = Replacement::kLru;
};

/// Simulates every configuration with as few trace walks as possible:
/// fully-associative configurations sharing a line size are answered by one
/// marker-augmented LRU stack each; set-associative configurations are fed
/// from shared walks. Results are exact and returned in `configs` order,
/// bit-identical to per-configuration simulate_lru / simulate_lru_lines /
/// simulate_set_assoc. With a pool, independent units run in parallel.
std::vector<SimResult> simulate_sweep(
    const trace::CompiledProgram& prog,
    const std::vector<SweepConfig>& configs,
    parallel::ThreadPool* pool = nullptr);

/// Shared-walk fallback: instantiates one real cache per configuration
/// (LruCache for ways == 0, SetAssocCache otherwise) and feeds all of them
/// from a single batched trace walk (or one walk per worker with a pool).
/// Exact but O(#configs) work per access; prefer simulate_sweep, which
/// routes each configuration to the cheapest engine.
std::vector<SimResult> simulate_many(
    const trace::CompiledProgram& prog,
    const std::vector<SweepConfig>& configs,
    parallel::ThreadPool* pool = nullptr);

}  // namespace sdlo::cachesim
