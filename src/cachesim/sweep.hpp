// Batched multi-configuration cache simulation (the sweep engine).
//
// Every validation table and tile-search ablation wants the same trace
// evaluated against many cache configurations. Walking the trace once per
// configuration wastes both the trace generation and — for fully
// associative LRU — the simulation itself: by Mattson's inclusion property
// the LRU stack of a small cache is a prefix of the LRU stack of a larger
// one, so a single annotated stack answers every capacity at once.
//
// simulate_sweep() exploits this with a marker-augmented LRU stack: one
// doubly-linked stack plus one boundary marker per requested capacity.
// Addresses are element indices in the contiguous [0, address_space_size())
// space, so the stack's address map is a dense direct-indexed table keyed
// by addr >> log2(line_elems) — no hashing anywhere on the access path.
// Each access costs O(1) table work plus O(#crossed boundaries) pointer
// updates and yields, exactly, the SimResult (including misses_by_site) of
// every fully-associative configuration sharing that line size.
// Set-associative configurations, which the inclusion property does not
// cover, fall back to simulate_many(): real LruCache/SetAssocCache
// instances fed from a single shared trace walk.
//
// Both entry points consume the run-compressed trace (walk_runs) by
// default: constant-stride run groups are classified in bulk where the
// stack state provably repeats (same-line tails, all-stride-0 groups) and
// decompressed per element otherwise — bit-identical either way. Passing
// trace::TraceMode::kBatched forces the historical per-access walk (the
// differential-testing reference path).
//
// Both entry points accept an optional parallel::ThreadPool. Independent
// simulation units (one per line-size group / per cache chunk) then run on
// worker threads, each performing its own walk of the shared
// CompiledProgram (walks are const and re-entrant).
//
// Both entry points also accept an optional Governor (support/governor.hpp):
// each walk polls every `poll_interval` run groups and, when the deadline
// or cancellation trips, stops at a run-group boundary and returns the
// exact results of the consumed prefix, marked Completeness::kTruncated
// (with a pool, each worker's chunk truncates at its own prefix). A memory
// budget gates the dense direct-indexed address tables: when a reservation
// is denied — or the sweep-dense-alloc failpoint is armed — the engine
// degrades to hashed-table units, bit-identical but slower.
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/sim.hpp"
#include "parallel/thread_pool.hpp"
#include "trace/spool.hpp"
#include "trace/walker.hpp"

namespace sdlo::cachesim {

/// One cache configuration of a sweep.
struct SweepConfig {
  /// Total capacity in elements (> 0; a multiple of line_elems).
  std::int64_t capacity_elems = 0;
  /// Line size in elements (a power of two; 1 = the paper's element model).
  std::int64_t line_elems = 1;
  /// Associativity: 0 = fully associative (single-pass marker engine);
  /// otherwise a W-way set-associative geometry (shared-walk fallback).
  int ways = 0;
  /// Replacement policy for set-associative configurations.
  Replacement policy = Replacement::kLru;
};

/// Simulates every configuration with as few trace walks as possible:
/// fully-associative configurations sharing a line size are answered by one
/// marker-augmented LRU stack each; set-associative configurations are fed
/// from shared walks. Results are exact and returned in `configs` order,
/// bit-identical to per-configuration simulate_lru / simulate_lru_lines /
/// simulate_set_assoc — in either trace mode. With a pool, independent
/// units run in parallel.
std::vector<SimResult> simulate_sweep(
    const trace::CompiledProgram& prog,
    const std::vector<SweepConfig>& configs,
    parallel::ThreadPool* pool = nullptr,
    trace::TraceMode mode = trace::TraceMode::kRuns,
    const Governor* gov = nullptr);

/// Same sweep fed from an out-of-core spool file: the engines stream run
/// groups back through the spool's bounded read window, so peak memory is
/// the simulation tables plus the window — never the trace. Bit-identical
/// to the CompiledProgram overload on the spooled program.
std::vector<SimResult> simulate_sweep(
    const trace::SpooledTrace& spool,
    const std::vector<SweepConfig>& configs,
    parallel::ThreadPool* pool = nullptr,
    trace::TraceMode mode = trace::TraceMode::kRuns,
    const Governor* gov = nullptr);

/// Same sweep fed from a materialized in-memory run trace.
std::vector<SimResult> simulate_sweep(
    const trace::RunTrace& rt, const std::vector<SweepConfig>& configs,
    parallel::ThreadPool* pool = nullptr,
    trace::TraceMode mode = trace::TraceMode::kRuns,
    const Governor* gov = nullptr);

/// Shared-walk fallback: instantiates one real cache per configuration
/// (LruCache for ways == 0, SetAssocCache otherwise) and feeds all of them
/// from a single trace walk (or one walk per worker with a pool), each
/// cache consuming whole batches / run groups at a time with its tables
/// pre-sized from the program footprint. Exact but O(#configs) work per
/// access; prefer simulate_sweep, which routes each configuration to the
/// cheapest engine.
std::vector<SimResult> simulate_many(
    const trace::CompiledProgram& prog,
    const std::vector<SweepConfig>& configs,
    parallel::ThreadPool* pool = nullptr,
    trace::TraceMode mode = trace::TraceMode::kRuns,
    const Governor* gov = nullptr);

/// Shared-walk fallback fed from a spool file.
std::vector<SimResult> simulate_many(
    const trace::SpooledTrace& spool,
    const std::vector<SweepConfig>& configs,
    parallel::ThreadPool* pool = nullptr,
    trace::TraceMode mode = trace::TraceMode::kRuns,
    const Governor* gov = nullptr);

/// Shared-walk fallback fed from a materialized in-memory run trace.
std::vector<SimResult> simulate_many(
    const trace::RunTrace& rt, const std::vector<SweepConfig>& configs,
    parallel::ThreadPool* pool = nullptr,
    trace::TraceMode mode = trace::TraceMode::kRuns,
    const Governor* gov = nullptr);

}  // namespace sdlo::cachesim
