// Marker-augmented LRU stack engine.
//
// One pass over a trace, exact hit segments for every capacity of one
// line-size group (Mattson's inclusion property): the stack is a
// doubly-linked list over an arena; markers[j] pins the node at stack
// position cap[j]; a dense side array carries, per node, the index of the
// capacity segment its position falls in, so one dense-table load
// classifies an access against all capacities and each stack rotation
// touches only the boundary nodes. The address map is direct-indexed: line
// indices are dense in [0, footprint_lines).
//
// This is the engine behind both the sequential sweep unit (sweep.cpp) and
// the time-partitioned parallel sweep (parallel_stack.hpp), which runs one
// engine per trace chunk. For partitioning the engine exposes two hooks:
//
//  * a hole sink — every cold access (first touch of a line *within the fed
//    prefix*) is appended, in program order, as a (line, site) Hole. For a
//    chunk, a hole's reuse source may lie in an earlier chunk; the merge
//    pass resolves it to its exact global depth. Every other access's
//    segment is globally exact already, because its whole reuse window lies
//    inside the chunk.
//  * recency_order() — the resident lines in final last-access order. The
//    bulk fast paths preserve this order exactly (the disjoint-group path
//    ends with a silent replay that restores it), so the merge pass can
//    extend its boundary structure with each chunk's lines in true global
//    order.
//
// Run groups are classified in bulk where the stack provably repeats:
//  * a single-run group whose tail stays on one line (stride 0, or
//    |stride| < line_elems between line crossings) — every access after
//    the first hits the head of the stack, i.e. segment 0, and leaves the
//    stack untouched;
//  * a "pinned" group, every member run confined to one line — after the
//    first full iteration the stack's top-of-stack order is the group's
//    last-occurrence order, a fixed point of the iteration, so each
//    reference's stack distance (hence segment) is identical for every
//    iteration >= 1: simulate iterations 0 and 1 per element, then
//    bulk-account the remaining count-2 repeats;
//  * a disjoint mixed group — see consume_disjoint_group.
// Anything else decompresses to exact per-element steps, with the line
// index sequence batch-generated through the SIMD shim (support/simd.hpp)
// so the stack walk runs over a flat prefetchable buffer.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/walker.hpp"

namespace sdlo::cachesim {

/// Estimated bytes per footprint line of the engine's dense tables, used to
/// size MemoryBudget reservations: node_of_ (int32) + Node (2x int32) +
/// seg_ (uint8).
inline constexpr std::uint64_t kStackBytesPerLine = 13;

/// A cold access recorded for cross-chunk resolution: the first touch of
/// `line` within the fed prefix, attributed to access site `site`. Holes
/// are recorded in program order.
struct Hole {
  std::uint64_t line = 0;
  std::int32_t site = 0;
};

class MarkerStackEngine {
 public:
  /// `caps_lines` are the distinct capacities in lines, ascending.
  /// `footprint_lines` is the exact dense address-table size
  /// (CompiledProgram::footprint_lines). A non-null `hole_sink` receives
  /// every cold access in program order.
  MarkerStackEngine(std::vector<std::int64_t> caps_lines,
                    std::int64_t line_elems, std::int32_t num_sites,
                    std::uint64_t footprint_lines,
                    std::vector<Hole>* hole_sink = nullptr);

  void consume(const trace::Access* a, std::size_t n);
  void consume_runs(const trace::Run* g, std::size_t nrefs);

  /// Accesses fed so far.
  std::uint64_t accesses() const { return accesses_; }

  /// Hit counts, row-major [site][segment]; row stride is segments().
  /// Segment s counts hits at stack depth d with caps[s-1] < d <= caps[s]
  /// (segment segments()-1: deeper than every capacity).
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  /// Cold (first-touch) accesses per site. With a hole sink attached these
  /// are the per-site hole counts, to be re-resolved by the merge pass.
  const std::vector<std::uint64_t>& cold_by_site() const {
    return cold_by_site_;
  }

  /// Number of capacity segments per site row: caps().size() + 1.
  std::size_t segments() const { return ks_; }

  const std::vector<std::int64_t>& caps() const { return caps_; }

  /// Segment index of a stack depth: the number of capacities < depth.
  std::size_t segment_of_depth(std::uint64_t depth) const;

  /// The resident lines in last-access order, oldest (LRU) first. Exact:
  /// every bulk path preserves the true final stack order.
  std::vector<std::uint64_t> recency_order() const;

 private:
  struct Node {
    std::int32_t prev = -1;  // towards the MRU end
    std::int32_t next = -1;  // towards the LRU end
  };

  std::int32_t step(std::uint64_t line, std::int32_t site);
  void consume_single(const trace::Run& run);
  void consume_pinned_group(const trace::Run* g, std::size_t nrefs);
  bool consume_disjoint_group(const trace::Run* g, std::size_t nrefs);
  void rotate_to_top(std::uint64_t line);
  void step_lines(const std::uint64_t* lines, std::size_t n,
                  std::int32_t site);

  std::vector<std::int64_t> caps_;  // ascending, in lines
  std::int64_t line_elems_;
  int shift_;
  std::int32_t num_sites_;
  std::size_t ks_;  // bucket row stride: caps_.size() + 1 segments

  std::vector<Node> nodes_;
  std::vector<std::uint8_t> seg_;  // per-node capacity segment (parallel)
  std::int32_t head_ = -1;
  std::int32_t tail_ = -1;
  std::int64_t size_ = 0;
  std::vector<std::int32_t> markers_;

  std::vector<std::int32_t> node_of_;  // dense line -> node index, -1 empty

  std::vector<std::uint64_t> buckets_;  // [site][segment] hit-at counts
  std::vector<std::uint64_t> cold_by_site_;
  std::uint64_t accesses_ = 0;
  std::vector<Hole>* hole_sink_ = nullptr;
};

}  // namespace sdlo::cachesim
