#include "cachesim/sim.hpp"

#include <bit>

namespace sdlo::cachesim {

SimResult simulate_lru(const trace::CompiledProgram& prog,
                       std::int64_t capacity) {
  LruCache cache(capacity);
  SimResult r;
  r.misses_by_site.assign(static_cast<std::size_t>(prog.num_sites()), 0);
  prog.walk([&](const trace::Access& a) {
    ++r.accesses;
    if (!cache.access(a.addr)) {
      ++r.misses;
      ++r.misses_by_site[static_cast<std::size_t>(a.site)];
    }
  });
  return r;
}

SimResult simulate_set_assoc(const trace::CompiledProgram& prog,
                             std::int64_t capacity_elems, int ways,
                             std::int64_t line_elems, Replacement policy) {
  SetAssocCache cache(capacity_elems, ways, line_elems, policy);
  SimResult r;
  r.misses_by_site.assign(static_cast<std::size_t>(prog.num_sites()), 0);
  prog.walk([&](const trace::Access& a) {
    ++r.accesses;
    if (!cache.access(a.addr)) {
      ++r.misses;
      ++r.misses_by_site[static_cast<std::size_t>(a.site)];
    }
  });
  return r;
}

SimResult simulate_lru_lines(const trace::CompiledProgram& prog,
                             std::int64_t capacity_elems,
                             std::int64_t line_elems) {
  SDLO_EXPECTS(line_elems > 0);
  SDLO_EXPECTS(std::has_single_bit(
      static_cast<std::uint64_t>(line_elems)));
  SDLO_CHECK(capacity_elems % line_elems == 0,
             "capacity must be a whole number of lines");
  const int shift =
      std::countr_zero(static_cast<std::uint64_t>(line_elems));
  LruCache cache(capacity_elems / line_elems);
  SimResult r;
  r.misses_by_site.assign(static_cast<std::size_t>(prog.num_sites()), 0);
  prog.walk([&](const trace::Access& a) {
    ++r.accesses;
    if (!cache.access(a.addr >> shift)) {
      ++r.misses;
      ++r.misses_by_site[static_cast<std::size_t>(a.site)];
    }
  });
  return r;
}

std::uint64_t ProfileResult::misses(std::int64_t capacity_elems) const {
  return misses_from_histogram(histogram, cold, capacity_elems / line_elems);
}

SimResult ProfileResult::result(std::int64_t capacity_elems) const {
  const std::int64_t cap_lines = capacity_elems / line_elems;
  SimResult r;
  r.accesses = accesses;
  r.misses = misses_from_histogram(histogram, cold, cap_lines);
  r.misses_by_site.resize(histogram_by_site.size());
  for (std::size_t s = 0; s < histogram_by_site.size(); ++s) {
    r.misses_by_site[s] = misses_from_histogram(histogram_by_site[s],
                                                cold_by_site[s], cap_lines);
  }
  return r;
}

ProfileResult profile_stack_distances(const trace::CompiledProgram& prog,
                                      std::int64_t line_elems) {
  SDLO_EXPECTS(line_elems > 0);
  SDLO_EXPECTS(std::has_single_bit(
      static_cast<std::uint64_t>(line_elems)));
  const int shift =
      std::countr_zero(static_cast<std::uint64_t>(line_elems));
  StackDistanceProfiler profiler(static_cast<std::size_t>(
      prog.address_space_size() >> shift));
  profiler.enable_site_tracking(prog.num_sites());
  prog.walk([&](const trace::Access& a) {
    profiler.access(a.addr >> shift, a.site);
  });
  ProfileResult r;
  r.accesses = profiler.total_accesses();
  r.cold = profiler.cold_accesses();
  r.line_elems = line_elems;
  r.histogram = profiler.histogram();
  r.cold_by_site.reserve(static_cast<std::size_t>(prog.num_sites()));
  r.histogram_by_site.reserve(static_cast<std::size_t>(prog.num_sites()));
  for (std::int32_t s = 0; s < prog.num_sites(); ++s) {
    r.cold_by_site.push_back(profiler.site_cold(s));
    r.histogram_by_site.push_back(profiler.site_histogram(s));
  }
  return r;
}

}  // namespace sdlo::cachesim
