#include "cachesim/sim.hpp"

#include <bit>

#include "support/failpoints.hpp"

namespace sdlo::cachesim {

SimResult simulate_lru(const trace::CompiledProgram& prog,
                       std::int64_t capacity) {
  LruCache cache(capacity, prog.address_space_size());
  SimResult r;
  r.misses_by_site.assign(static_cast<std::size_t>(prog.num_sites()), 0);
  prog.walk([&](const trace::Access& a) {
    ++r.accesses;
    if (!cache.access(a.addr)) {
      ++r.misses;
      ++r.misses_by_site[static_cast<std::size_t>(a.site)];
    }
  });
  return r;
}

SimResult simulate_set_assoc(const trace::CompiledProgram& prog,
                             std::int64_t capacity_elems, int ways,
                             std::int64_t line_elems, Replacement policy) {
  SetAssocCache cache(capacity_elems, ways, line_elems, policy);
  SimResult r;
  r.misses_by_site.assign(static_cast<std::size_t>(prog.num_sites()), 0);
  prog.walk([&](const trace::Access& a) {
    ++r.accesses;
    if (!cache.access(a.addr)) {
      ++r.misses;
      ++r.misses_by_site[static_cast<std::size_t>(a.site)];
    }
  });
  return r;
}

SimResult simulate_lru_lines(const trace::CompiledProgram& prog,
                             std::int64_t capacity_elems,
                             std::int64_t line_elems) {
  SDLO_EXPECTS(line_elems > 0);
  SDLO_EXPECTS(std::has_single_bit(
      static_cast<std::uint64_t>(line_elems)));
  SDLO_CHECK(capacity_elems % line_elems == 0,
             "capacity must be a whole number of lines");
  const int shift =
      std::countr_zero(static_cast<std::uint64_t>(line_elems));
  LruCache cache(capacity_elems / line_elems,
                 prog.footprint_lines(line_elems));
  SimResult r;
  r.misses_by_site.assign(static_cast<std::size_t>(prog.num_sites()), 0);
  prog.walk([&](const trace::Access& a) {
    ++r.accesses;
    if (!cache.access(a.addr >> shift)) {
      ++r.misses;
      ++r.misses_by_site[static_cast<std::size_t>(a.site)];
    }
  });
  return r;
}

namespace {

/// Feeds one run group into the profiler, bulk-accounting the depths the
/// run structure proves. Mirrors the sweep engine's fast paths minus the
/// disjoint-group one: the Fenwick marks cannot be silently replayed, so
/// only shapes whose marks end in the exact final order are bulked.
void profile_run_group(StackDistanceProfiler& profiler, const trace::Run* g,
                       std::size_t nrefs, int shift,
                       std::int64_t line_elems) {
  const std::uint64_t count = g[0].count;
  if (count == 1) {  // statement group (any width): one access per ref
    for (std::size_t r = 0; r < nrefs; ++r) {
      profiler.access(g[r].base >> shift, g[r].site);
    }
    return;
  }
  if (nrefs == 1) {
    const trace::Run& run = g[0];
    const std::uint64_t mag = static_cast<std::uint64_t>(
        run.stride < 0 ? -run.stride : run.stride);
    if (mag == 0) {
      // Same line throughout: every access after the first has depth 1.
      profiler.access(run.base >> shift, run.site);
      profiler.record_repeats(1, count - 1, run.site);
      return;
    }
    if (mag < static_cast<std::uint64_t>(line_elems)) {
      // Sub-line stride: collapse the consecutive same-line accesses
      // between line crossings.
      std::uint64_t v = 0;
      std::uint64_t a = run.base;
      while (v < count) {
        const std::uint64_t line = a >> shift;
        std::uint64_t span;
        if (run.stride > 0) {
          span = (((line + 1) << shift) - a + mag - 1) / mag;
        } else {
          span = (a - (line << shift)) / mag + 1;
        }
        if (span > count - v) span = count - v;
        profiler.access(line, run.site);
        if (span > 1) profiler.record_repeats(1, span - 1, run.site);
        v += span;
        a += span * static_cast<std::uint64_t>(run.stride);
      }
      return;
    }
    // Every element lands on a fresh line: exact per-element profiling.
    std::uint64_t a = run.base;
    for (std::uint64_t v = 0; v < count; ++v) {
      profiler.access(a >> shift, run.site);
      a += static_cast<std::uint64_t>(run.stride);
    }
    return;
  }
  bool pinned = true;
  for (std::size_t r = 0; r < nrefs; ++r) {
    if ((g[r].base >> shift) != (g[r].at(count - 1) >> shift)) {
      pinned = false;
      break;
    }
  }
  if (pinned) {
    // Every ref stays on one line, so the per-iteration access sequence is
    // literally periodic: iterations >= 1 repeat iteration 1's depths, and
    // skipping them leaves every mark in the final relative order.
    SDLO_EXPECTS(nrefs <= trace::kMaxLeafRefs);
    for (std::size_t r = 0; r < nrefs; ++r) {
      profiler.access(g[r].base >> shift, g[r].site);
    }
    std::int64_t depths[trace::kMaxLeafRefs];
    for (std::size_t r = 0; r < nrefs; ++r) {
      depths[r] = profiler.access(g[r].base >> shift, g[r].site);
      SDLO_EXPECTS(depths[r] >= 1);  // iteration 0 touched every line
    }
    for (std::size_t r = 0; r < nrefs; ++r) {
      profiler.record_repeats(depths[r], count - 2, g[r].site);
    }
    return;
  }
  // Mixed group: exact per-element decompression, iteration-major.
  SDLO_EXPECTS(nrefs <= trace::kMaxLeafRefs);
  std::uint64_t addrs[trace::kMaxLeafRefs];
  for (std::size_t r = 0; r < nrefs; ++r) addrs[r] = g[r].base;
  for (std::uint64_t v = 0; v < count; ++v) {
    for (std::size_t r = 0; r < nrefs; ++r) {
      profiler.access(addrs[r] >> shift, g[r].site);
      addrs[r] += static_cast<std::uint64_t>(g[r].stride);
    }
  }
}

}  // namespace

namespace {

/// Internal control-flow exception: thrown by a governed walk sink to stop
/// the walk at a safe boundary. Never escapes this translation unit.
struct AbortProfile {};

}  // namespace

ProfileResult profile_stack_distances(const trace::CompiledProgram& prog,
                                      std::int64_t line_elems,
                                      trace::TraceMode mode,
                                      const Governor* gov) {
  SDLO_EXPECTS(line_elems > 0);
  SDLO_EXPECTS(std::has_single_bit(
      static_cast<std::uint64_t>(line_elems)));
  const int shift =
      std::countr_zero(static_cast<std::uint64_t>(line_elems));
  // The dense last-access table is one uint64 per footprint line; gate it
  // on the governor's memory budget (and the named failpoint) and fall
  // back to the hashed table — bit-identical, just slower — when denied.
  std::uint64_t addr_limit = prog.footprint_lines(line_elems);
  MemoryReservation reservation;
  if (failpoints::fail_alloc(failpoints::kProfilerDenseAlloc)) {
    addr_limit = 0;
  } else if (gov != nullptr && gov->memory != nullptr) {
    reservation =
        MemoryReservation(gov->memory, addr_limit * sizeof(std::uint64_t));
    if (!reservation.ok()) addr_limit = 0;
  }
  StackDistanceProfiler profiler(
      static_cast<std::size_t>(prog.address_space_size() >> shift),
      addr_limit);
  profiler.enable_site_tracking(prog.num_sites());
  const std::uint64_t interval =
      gov != nullptr && gov->poll_interval > 0 ? gov->poll_interval : 1024;
  std::uint64_t tick = 0;
  bool complete = true;
  try {
    if (mode == trace::TraceMode::kRuns) {
      prog.walk_runs([&](const trace::Run* g, std::size_t nrefs) {
        if (gov != nullptr && ++tick >= interval) {
          tick = 0;
          if (gov->should_stop()) throw AbortProfile{};
        }
        profile_run_group(profiler, g, nrefs, shift, line_elems);
      });
    } else {
      prog.walk([&](const trace::Access& a) {
        if (gov != nullptr && ++tick >= interval) {
          tick = 0;
          if (gov->should_stop()) throw AbortProfile{};
        }
        profiler.access(a.addr >> shift, a.site);
      });
    }
  } catch (const AbortProfile&) {
    complete = false;
  }
  ProfileResult r;
  r.completeness =
      complete ? Completeness::kComplete : Completeness::kTruncated;
  r.accesses = profiler.total_accesses();
  r.cold = profiler.cold_accesses();
  r.line_elems = line_elems;
  r.histogram = profiler.histogram();
  r.cold_by_site.reserve(static_cast<std::size_t>(prog.num_sites()));
  r.histogram_by_site.reserve(static_cast<std::size_t>(prog.num_sites()));
  for (std::int32_t s = 0; s < prog.num_sites(); ++s) {
    r.cold_by_site.push_back(profiler.site_cold(s));
    r.histogram_by_site.push_back(profiler.site_histogram(s));
  }
  return r;
}

}  // namespace sdlo::cachesim
