#include "cachesim/sim.hpp"

#include <bit>

namespace sdlo::cachesim {

SimResult simulate_lru(const trace::CompiledProgram& prog,
                       std::int64_t capacity) {
  LruCache cache(capacity);
  SimResult r;
  r.misses_by_site.assign(static_cast<std::size_t>(prog.num_sites()), 0);
  prog.walk([&](const trace::Access& a) {
    ++r.accesses;
    if (!cache.access(a.addr)) {
      ++r.misses;
      ++r.misses_by_site[static_cast<std::size_t>(a.site)];
    }
  });
  return r;
}

SimResult simulate_set_assoc(const trace::CompiledProgram& prog,
                             std::int64_t capacity_elems, int ways,
                             std::int64_t line_elems, Replacement policy) {
  SetAssocCache cache(capacity_elems, ways, line_elems, policy);
  SimResult r;
  r.misses_by_site.assign(static_cast<std::size_t>(prog.num_sites()), 0);
  prog.walk([&](const trace::Access& a) {
    ++r.accesses;
    if (!cache.access(a.addr)) {
      ++r.misses;
      ++r.misses_by_site[static_cast<std::size_t>(a.site)];
    }
  });
  return r;
}

SimResult simulate_lru_lines(const trace::CompiledProgram& prog,
                             std::int64_t capacity_elems,
                             std::int64_t line_elems) {
  SDLO_EXPECTS(line_elems > 0);
  SDLO_EXPECTS(std::has_single_bit(
      static_cast<std::uint64_t>(line_elems)));
  SDLO_CHECK(capacity_elems % line_elems == 0,
             "capacity must be a whole number of lines");
  const int shift =
      std::countr_zero(static_cast<std::uint64_t>(line_elems));
  LruCache cache(capacity_elems / line_elems);
  SimResult r;
  r.misses_by_site.assign(static_cast<std::size_t>(prog.num_sites()), 0);
  prog.walk([&](const trace::Access& a) {
    ++r.accesses;
    if (!cache.access(a.addr >> shift)) {
      ++r.misses;
      ++r.misses_by_site[static_cast<std::size_t>(a.site)];
    }
  });
  return r;
}

std::uint64_t ProfileResult::misses(std::int64_t capacity) const {
  std::uint64_t m = cold;
  for (auto it = histogram.upper_bound(capacity); it != histogram.end();
       ++it) {
    m += it->second;
  }
  return m;
}

ProfileResult profile_stack_distances(const trace::CompiledProgram& prog) {
  StackDistanceProfiler profiler(
      static_cast<std::size_t>(prog.address_space_size()));
  prog.walk([&](const trace::Access& a) { profiler.access(a.addr); });
  ProfileResult r;
  r.accesses = profiler.total_accesses();
  r.cold = profiler.cold_accesses();
  r.histogram = profiler.histogram();
  return r;
}

}  // namespace sdlo::cachesim
