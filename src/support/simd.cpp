#include "support/simd.hpp"

#include <atomic>
#include <cstdlib>

#if defined(__AVX2__)
#include <immintrin.h>
#define SDLO_SIMD_ISA "avx2"
#elif defined(__SSE2__) || defined(_M_X64) || defined(__x86_64__)
#include <emmintrin.h>
#define SDLO_SIMD_ISA "sse2"
#elif defined(__aarch64__)
#include <arm_neon.h>
#define SDLO_SIMD_ISA "neon"
#else
#define SDLO_SIMD_ISA "scalar"
#endif

namespace sdlo::simd {

namespace {

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{std::getenv("SDLO_NO_SIMD") == nullptr};
  return flag;
}

void add_u64_scalar(std::uint64_t* dst, const std::uint64_t* src,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void run_lines_scalar(std::uint64_t base, std::int64_t stride, int shift,
                      std::uint64_t* out, std::size_t n) {
  std::uint64_t a = base;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = a >> shift;
    a += static_cast<std::uint64_t>(stride);
  }
}

std::size_t find_not_equal_scalar(const std::uint64_t* a, std::size_t n,
                                  std::size_t from, std::uint64_t value) {
  for (std::size_t i = from; i < n; ++i) {
    if (a[i] != value) return i;
  }
  return n;
}

}  // namespace

const char* isa() { return SDLO_SIMD_ISA; }

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

#if defined(__AVX2__)

void add_u64(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  if (!enabled()) return add_u64_scalar(dst, src, n);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_add_epi64(d, s));
  }
  add_u64_scalar(dst + i, src + i, n - i);
}

void run_lines(std::uint64_t base, std::int64_t stride, int shift,
               std::uint64_t* out, std::size_t n) {
  if (!enabled()) return run_lines_scalar(base, stride, shift, out, n);
  const std::uint64_t s = static_cast<std::uint64_t>(stride);
  __m256i a = _mm256_set_epi64x(
      static_cast<long long>(base + 3 * s),
      static_cast<long long>(base + 2 * s),
      static_cast<long long>(base + s), static_cast<long long>(base));
  const __m256i step = _mm256_set1_epi64x(static_cast<long long>(4 * s));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_srli_epi64(a, shift));
    a = _mm256_add_epi64(a, step);
  }
  run_lines_scalar(base + i * s, stride, shift, out + i, n - i);
}

std::size_t find_not_equal(const std::uint64_t* a, std::size_t n,
                           std::size_t from, std::uint64_t value) {
  if (!enabled()) return find_not_equal_scalar(a, n, from, value);
  const __m256i v = _mm256_set1_epi64x(static_cast<long long>(value));
  std::size_t i = from;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i eq = _mm256_cmpeq_epi64(x, v);
    if (_mm256_movemask_epi8(eq) != -1) {
      return find_not_equal_scalar(a, n, i, value);
    }
  }
  return find_not_equal_scalar(a, n, i, value);
}

#elif defined(__SSE2__) || defined(_M_X64) || defined(__x86_64__)

void add_u64(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  if (!enabled()) return add_u64_scalar(dst, src, n);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_add_epi64(d, s));
  }
  add_u64_scalar(dst + i, src + i, n - i);
}

void run_lines(std::uint64_t base, std::int64_t stride, int shift,
               std::uint64_t* out, std::size_t n) {
  if (!enabled()) return run_lines_scalar(base, stride, shift, out, n);
  const std::uint64_t s = static_cast<std::uint64_t>(stride);
  __m128i a = _mm_set_epi64x(static_cast<long long>(base + s),
                             static_cast<long long>(base));
  const __m128i step = _mm_set1_epi64x(static_cast<long long>(2 * s));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_srli_epi64(a, shift));
    a = _mm_add_epi64(a, step);
  }
  run_lines_scalar(base + i * s, stride, shift, out + i, n - i);
}

std::size_t find_not_equal(const std::uint64_t* a, std::size_t n,
                           std::size_t from, std::uint64_t value) {
  if (!enabled()) return find_not_equal_scalar(a, n, from, value);
  // SSE2 has no 64-bit compare; compare as 2x32 and require both halves of
  // each lane equal (movemask 0xFFFF over the 16 bytes).
  const __m128i v = _mm_set1_epi64x(static_cast<long long>(value));
  std::size_t i = from;
  for (; i + 2 <= n; i += 2) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i eq = _mm_cmpeq_epi32(x, v);
    if (_mm_movemask_epi8(eq) != 0xFFFF) {
      return find_not_equal_scalar(a, n, i, value);
    }
  }
  return find_not_equal_scalar(a, n, i, value);
}

#elif defined(__aarch64__)

void add_u64(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  if (!enabled()) return add_u64_scalar(dst, src, n);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vaddq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  add_u64_scalar(dst + i, src + i, n - i);
}

void run_lines(std::uint64_t base, std::int64_t stride, int shift,
               std::uint64_t* out, std::size_t n) {
  if (!enabled()) return run_lines_scalar(base, stride, shift, out, n);
  const std::uint64_t s = static_cast<std::uint64_t>(stride);
  const std::uint64_t lanes[2] = {base, base + s};
  uint64x2_t a = vld1q_u64(lanes);
  const uint64x2_t step = vdupq_n_u64(2 * s);
  const int64x2_t sh = vdupq_n_s64(-shift);  // vshlq with negative = right
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(out + i, vshlq_u64(a, sh));
    a = vaddq_u64(a, step);
  }
  run_lines_scalar(base + i * s, stride, shift, out + i, n - i);
}

std::size_t find_not_equal(const std::uint64_t* a, std::size_t n,
                           std::size_t from, std::uint64_t value) {
  if (!enabled()) return find_not_equal_scalar(a, n, from, value);
  const uint64x2_t v = vdupq_n_u64(value);
  std::size_t i = from;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t eq = vceqq_u64(vld1q_u64(a + i), v);
    // Both lanes all-ones iff both equal; min across lanes detects any 0.
    if (vminvq_u32(vreinterpretq_u32_u64(eq)) != 0xFFFFFFFFu) {
      return find_not_equal_scalar(a, n, i, value);
    }
  }
  return find_not_equal_scalar(a, n, i, value);
}

#else

void add_u64(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  add_u64_scalar(dst, src, n);
}

void run_lines(std::uint64_t base, std::int64_t stride, int shift,
               std::uint64_t* out, std::size_t n) {
  run_lines_scalar(base, stride, shift, out, n);
}

std::size_t find_not_equal(const std::uint64_t* a, std::size_t n,
                           std::size_t from, std::uint64_t value) {
  return find_not_equal_scalar(a, n, from, value);
}

#endif

}  // namespace sdlo::simd
