#include "support/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define SDLO_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define SDLO_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace sdlo::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar bodies: the reference semantics every vector body must reproduce
// bit for bit.

void add_u64_scalar(std::uint64_t* dst, const std::uint64_t* src,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void run_lines_scalar(std::uint64_t base, std::int64_t stride, int shift,
                      std::uint64_t* out, std::size_t n) {
  std::uint64_t a = base;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = a >> shift;
    a += static_cast<std::uint64_t>(stride);
  }
}

std::size_t find_not_equal_scalar(const std::uint64_t* a, std::size_t n,
                                  std::size_t from, std::uint64_t value) {
  for (std::size_t i = from; i < n; ++i) {
    if (a[i] != value) return i;
  }
  return n;
}

void gather_u64_scalar(const std::uint64_t* table, const std::uint64_t* idx,
                       std::uint64_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = table[static_cast<std::size_t>(idx[i])];
  }
}

// ---------------------------------------------------------------------------
// Tier probing and the process-wide dispatch state.

Isa probe_cpu() {
#if defined(SDLO_SIMD_X86)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f")) return Isa::kAvx512;
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
  return Isa::kSse2;  // the x86-64 baseline
#elif defined(SDLO_SIMD_NEON)
  return Isa::kNeon;
#else
  return Isa::kScalar;
#endif
}

/// Clamps a requested tier to what the CPU supports. On x86 the tiers are
/// totally ordered; a cross-architecture request falls to scalar.
Isa clamp_isa(Isa want, Isa have) {
  if (want == have) return want;
  if (want == Isa::kNeon || have == Isa::kNeon) return Isa::kScalar;
  return static_cast<std::uint8_t>(want) < static_cast<std::uint8_t>(have)
             ? want
             : have;
}

bool parse_isa(const char* name, Isa* out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) *out = Isa::kScalar;
  else if (std::strcmp(name, "sse2") == 0) *out = Isa::kSse2;
  else if (std::strcmp(name, "avx2") == 0) *out = Isa::kAvx2;
  else if (std::strcmp(name, "avx512") == 0) *out = Isa::kAvx512;
  else if (std::strcmp(name, "neon") == 0) *out = Isa::kNeon;
  else return false;
  return true;
}

std::atomic<Isa>& active_flag() {
  static std::atomic<Isa> flag{[] {
    Isa isa = probe_cpu();
    Isa forced;
    if (parse_isa(std::getenv("SDLO_SIMD"), &forced)) {
      isa = clamp_isa(forced, isa);
    }
    return isa;
  }()};
  return flag;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{std::getenv("SDLO_NO_SIMD") == nullptr};
  return flag;
}

/// The tier a call should run at right now.
Isa dispatch_isa() {
  if (!enabled_flag().load(std::memory_order_relaxed)) return Isa::kScalar;
  return active_flag().load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// x86-64 vector bodies. Each tier is a separate target-attributed function
// so one binary carries them all; dispatch_isa() guarantees a body only
// runs on hardware that supports it.

#if defined(SDLO_SIMD_X86)

// GCC's avx512fintrin.h passes an intentionally undefined source register
// to the unmasked forms (_mm512_undefined_epi32), which -Wmaybe-uninitialized
// flags through inlining; the lanes it "reads" are fully overwritten.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

__attribute__((target("sse2"))) void add_u64_sse2(std::uint64_t* dst,
                                                  const std::uint64_t* src,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_add_epi64(d, s));
  }
  add_u64_scalar(dst + i, src + i, n - i);
}

__attribute__((target("avx2"))) void add_u64_avx2(std::uint64_t* dst,
                                                  const std::uint64_t* src,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_add_epi64(d, s));
  }
  add_u64_scalar(dst + i, src + i, n - i);
}

__attribute__((target("avx512f"))) void add_u64_avx512(
    std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i s = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_add_epi64(d, s));
  }
  add_u64_scalar(dst + i, src + i, n - i);
}

__attribute__((target("sse2"))) void run_lines_sse2(std::uint64_t base,
                                                    std::int64_t stride,
                                                    int shift,
                                                    std::uint64_t* out,
                                                    std::size_t n) {
  const std::uint64_t s = static_cast<std::uint64_t>(stride);
  __m128i a = _mm_set_epi64x(static_cast<long long>(base + s),
                             static_cast<long long>(base));
  const __m128i step = _mm_set1_epi64x(static_cast<long long>(2 * s));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_srli_epi64(a, shift));
    a = _mm_add_epi64(a, step);
  }
  run_lines_scalar(base + i * s, stride, shift, out + i, n - i);
}

__attribute__((target("avx2"))) void run_lines_avx2(std::uint64_t base,
                                                    std::int64_t stride,
                                                    int shift,
                                                    std::uint64_t* out,
                                                    std::size_t n) {
  const std::uint64_t s = static_cast<std::uint64_t>(stride);
  __m256i a = _mm256_set_epi64x(
      static_cast<long long>(base + 3 * s),
      static_cast<long long>(base + 2 * s),
      static_cast<long long>(base + s), static_cast<long long>(base));
  const __m256i step = _mm256_set1_epi64x(static_cast<long long>(4 * s));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_srli_epi64(a, shift));
    a = _mm256_add_epi64(a, step);
  }
  run_lines_scalar(base + i * s, stride, shift, out + i, n - i);
}

__attribute__((target("avx512f"))) void run_lines_avx512(
    std::uint64_t base, std::int64_t stride, int shift, std::uint64_t* out,
    std::size_t n) {
  const std::uint64_t s = static_cast<std::uint64_t>(stride);
  __m512i a = _mm512_set_epi64(
      static_cast<long long>(base + 7 * s),
      static_cast<long long>(base + 6 * s),
      static_cast<long long>(base + 5 * s),
      static_cast<long long>(base + 4 * s),
      static_cast<long long>(base + 3 * s),
      static_cast<long long>(base + 2 * s),
      static_cast<long long>(base + s), static_cast<long long>(base));
  const __m512i step = _mm512_set1_epi64(static_cast<long long>(8 * s));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(out + i,
                        _mm512_srli_epi64(a, static_cast<unsigned>(shift)));
    a = _mm512_add_epi64(a, step);
  }
  run_lines_scalar(base + i * s, stride, shift, out + i, n - i);
}

__attribute__((target("sse2"))) std::size_t find_not_equal_sse2(
    const std::uint64_t* a, std::size_t n, std::size_t from,
    std::uint64_t value) {
  // SSE2 has no 64-bit compare; compare as 2x32 and require both halves of
  // each lane equal (movemask 0xFFFF over the 16 bytes).
  const __m128i v = _mm_set1_epi64x(static_cast<long long>(value));
  std::size_t i = from;
  for (; i + 2 <= n; i += 2) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i eq = _mm_cmpeq_epi32(x, v);
    if (_mm_movemask_epi8(eq) != 0xFFFF) {
      return find_not_equal_scalar(a, n, i, value);
    }
  }
  return find_not_equal_scalar(a, n, i, value);
}

__attribute__((target("avx2"))) std::size_t find_not_equal_avx2(
    const std::uint64_t* a, std::size_t n, std::size_t from,
    std::uint64_t value) {
  const __m256i v = _mm256_set1_epi64x(static_cast<long long>(value));
  std::size_t i = from;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i eq = _mm256_cmpeq_epi64(x, v);
    if (_mm256_movemask_epi8(eq) != -1) {
      return find_not_equal_scalar(a, n, i, value);
    }
  }
  return find_not_equal_scalar(a, n, i, value);
}

__attribute__((target("avx512f"))) std::size_t find_not_equal_avx512(
    const std::uint64_t* a, std::size_t n, std::size_t from,
    std::uint64_t value) {
  const __m512i v = _mm512_set1_epi64(static_cast<long long>(value));
  std::size_t i = from;
  for (; i + 8 <= n; i += 8) {
    const __m512i x = _mm512_loadu_si512(a + i);
    const __mmask8 eq = _mm512_cmpeq_epu64_mask(x, v);
    if (eq != 0xFF) return find_not_equal_scalar(a, n, i, value);
  }
  return find_not_equal_scalar(a, n, i, value);
}

__attribute__((target("avx2"))) void gather_u64_avx2(
    const std::uint64_t* table, const std::uint64_t* idx, std::uint64_t* out,
    std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i ix =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    const __m256i g = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(table), ix, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), g);
  }
  gather_u64_scalar(table, idx + i, out + i, n - i);
}

__attribute__((target("avx512f"))) void gather_u64_avx512(
    const std::uint64_t* table, const std::uint64_t* idx, std::uint64_t* out,
    std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i ix = _mm512_loadu_si512(idx + i);
    const __m512i g = _mm512_i64gather_epi64(ix, table, 8);
    _mm512_storeu_si512(out + i, g);
  }
  gather_u64_scalar(table, idx + i, out + i, n - i);
}

#pragma GCC diagnostic pop

#endif  // SDLO_SIMD_X86

// ---------------------------------------------------------------------------
// aarch64 NEON bodies (baseline on that architecture, no attribute needed).

#if defined(SDLO_SIMD_NEON)

void add_u64_neon(std::uint64_t* dst, const std::uint64_t* src,
                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vaddq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  add_u64_scalar(dst + i, src + i, n - i);
}

void run_lines_neon(std::uint64_t base, std::int64_t stride, int shift,
                    std::uint64_t* out, std::size_t n) {
  const std::uint64_t s = static_cast<std::uint64_t>(stride);
  const std::uint64_t lanes[2] = {base, base + s};
  uint64x2_t a = vld1q_u64(lanes);
  const uint64x2_t step = vdupq_n_u64(2 * s);
  const int64x2_t sh = vdupq_n_s64(-shift);  // vshlq with negative = right
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(out + i, vshlq_u64(a, sh));
    a = vaddq_u64(a, step);
  }
  run_lines_scalar(base + i * s, stride, shift, out + i, n - i);
}

std::size_t find_not_equal_neon(const std::uint64_t* a, std::size_t n,
                                std::size_t from, std::uint64_t value) {
  const uint64x2_t v = vdupq_n_u64(value);
  std::size_t i = from;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t eq = vceqq_u64(vld1q_u64(a + i), v);
    // Both lanes all-ones iff both equal; min across lanes detects any 0.
    if (vminvq_u32(vreinterpretq_u32_u64(eq)) != 0xFFFFFFFFu) {
      return find_not_equal_scalar(a, n, i, value);
    }
  }
  return find_not_equal_scalar(a, n, i, value);
}

#endif  // SDLO_SIMD_NEON

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kSse2: return "sse2";
    case Isa::kAvx2: return "avx2";
    case Isa::kAvx512: return "avx512";
    case Isa::kNeon: return "neon";
    case Isa::kScalar: break;
  }
  return "scalar";
}

Isa detected_isa() {
  static const Isa probed = probe_cpu();
  return probed;
}

Isa active_isa() { return active_flag().load(std::memory_order_relaxed); }

const char* isa() { return isa_name(active_isa()); }

Isa set_isa(Isa isa) {
  const Isa applied = clamp_isa(isa, detected_isa());
  active_flag().store(applied, std::memory_order_relaxed);
  return applied;
}

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

void add_u64(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  switch (dispatch_isa()) {
#if defined(SDLO_SIMD_X86)
    case Isa::kAvx512: return add_u64_avx512(dst, src, n);
    case Isa::kAvx2: return add_u64_avx2(dst, src, n);
    case Isa::kSse2: return add_u64_sse2(dst, src, n);
#endif
#if defined(SDLO_SIMD_NEON)
    case Isa::kNeon: return add_u64_neon(dst, src, n);
#endif
    default: return add_u64_scalar(dst, src, n);
  }
}

void run_lines(std::uint64_t base, std::int64_t stride, int shift,
               std::uint64_t* out, std::size_t n) {
  switch (dispatch_isa()) {
#if defined(SDLO_SIMD_X86)
    case Isa::kAvx512: return run_lines_avx512(base, stride, shift, out, n);
    case Isa::kAvx2: return run_lines_avx2(base, stride, shift, out, n);
    case Isa::kSse2: return run_lines_sse2(base, stride, shift, out, n);
#endif
#if defined(SDLO_SIMD_NEON)
    case Isa::kNeon: return run_lines_neon(base, stride, shift, out, n);
#endif
    default: return run_lines_scalar(base, stride, shift, out, n);
  }
}

std::size_t find_not_equal(const std::uint64_t* a, std::size_t n,
                           std::size_t from, std::uint64_t value) {
  switch (dispatch_isa()) {
#if defined(SDLO_SIMD_X86)
    case Isa::kAvx512: return find_not_equal_avx512(a, n, from, value);
    case Isa::kAvx2: return find_not_equal_avx2(a, n, from, value);
    case Isa::kSse2: return find_not_equal_sse2(a, n, from, value);
#endif
#if defined(SDLO_SIMD_NEON)
    case Isa::kNeon: return find_not_equal_neon(a, n, from, value);
#endif
    default: return find_not_equal_scalar(a, n, from, value);
  }
}

void gather_u64(const std::uint64_t* table, const std::uint64_t* idx,
                std::uint64_t* out, std::size_t n) {
  switch (dispatch_isa()) {
#if defined(SDLO_SIMD_X86)
    case Isa::kAvx512: return gather_u64_avx512(table, idx, out, n);
    case Isa::kAvx2: return gather_u64_avx2(table, idx, out, n);
#endif
    default: return gather_u64_scalar(table, idx, out, n);
  }
}

}  // namespace sdlo::simd
