// Portable SIMD shim for the dense bulk paths of the trace engines.
//
// The hot loops of the sweep/profile pipeline that are *not* inherently
// serial pointer-chasing are flat-array sweeps: elementwise accumulation of
// per-chunk histogram buckets, generation of the line-index sequence of a
// constant-stride run, scanning a dense last-access table for occupied
// slots, and gathering scattered dense-table entries for a batch of lines.
// Each of those is expressed here once, with vector bodies for every
// instruction set the binary may meet at runtime (AVX-512 > AVX2 > SSE2 on
// x86-64, NEON on aarch64) and a scalar body everywhere else. The scalar
// and vector bodies are bit-identical by construction — every operation is
// exact integer arithmetic — so callers never need to know which ran.
//
// Dispatch is at RUNTIME: the vector bodies are compiled with per-function
// target attributes, the host's best instruction set is probed once at
// first use, and every call switches on the active tier. The tier can be
// forced down without rebuilding — SDLO_SIMD=scalar|sse2|avx2|avx512 (or
// set_isa()) clamps to what the CPU supports, and the legacy SDLO_NO_SIMD /
// set_enabled(false) switch still drops everything to the scalar bodies.
// The ablation bench and the CI dispatch matrix use this to measure and
// cross-check every tier on identical binaries.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sdlo::simd {

/// Vector instruction tiers, ordered weakest to strongest on x86-64.
/// kNeon is the aarch64 tier (incomparable with the x86 tiers).
enum class Isa : std::uint8_t { kScalar, kSse2, kAvx2, kAvx512, kNeon };

/// Canonical lowercase name of a tier ("avx512", "avx2", ...).
const char* isa_name(Isa isa);

/// Strongest tier the running CPU supports, probed once via
/// __builtin_cpu_supports (x86-64) or the architecture baseline.
Isa detected_isa();

/// The tier the vector bodies currently run at: detected_isa() clamped by
/// the SDLO_SIMD environment variable (if set) and by set_isa().
Isa active_isa();

/// Name of the active tier (for logs/benches): isa_name(active_isa()).
const char* isa();

/// Forces the active tier, clamped to what the CPU supports. Returns the
/// tier actually applied. Process-wide (ablation / tests).
Isa set_isa(Isa isa);

/// True when the vector bodies are active. Defaults to true unless the
/// SDLO_NO_SIMD environment variable is set (to anything) at first use.
bool enabled();

/// Turns the vector bodies on or off process-wide (ablation / tests).
void set_enabled(bool on);

/// dst[i] += src[i] for i in [0, n). The bucket/histogram merge primitive.
void add_u64(std::uint64_t* dst, const std::uint64_t* src, std::size_t n);

/// out[i] = (base + i*stride) >> shift for i in [0, n): the cache-line
/// index sequence of a constant-stride run, batch-generated so the
/// consuming stack walk runs over a flat prefetchable buffer. Addresses
/// wrap mod 2^64, matching trace::Run::at.
void run_lines(std::uint64_t base, std::int64_t stride, int shift,
               std::uint64_t* out, std::size_t n);

/// First index i in [from, n) with a[i] != value, or n when every slot
/// matches. The dense-table occupancy scan (compaction, recency export).
std::size_t find_not_equal(const std::uint64_t* a, std::size_t n,
                           std::size_t from, std::uint64_t value);

/// out[i] = table[idx[i]] for i in [0, n): gathered dense-table bulk load.
/// The hole-merge pass uses it to fetch a whole chunk's last-access
/// timestamps in one sweep instead of one dependent load per hole.
/// Callers guarantee every idx[i] is in bounds.
void gather_u64(const std::uint64_t* table, const std::uint64_t* idx,
                std::uint64_t* out, std::size_t n);

}  // namespace sdlo::simd
