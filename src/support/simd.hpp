// Portable SIMD shim for the dense bulk paths of the trace engines.
//
// The hot loops of the sweep/profile pipeline that are *not* inherently
// serial pointer-chasing are flat-array sweeps: elementwise accumulation of
// per-chunk histogram buckets, generation of the line-index sequence of a
// constant-stride run, and scanning a dense last-access table for occupied
// slots. Each of those is expressed here once, with a vectorized body for
// whatever the compiler was allowed to target (AVX2 > SSE2 on x86-64, NEON
// on aarch64) and a scalar body everywhere else. The scalar and vector
// bodies are bit-identical by construction — every operation is exact
// integer arithmetic — so callers never need to know which ran.
//
// The vector paths can be disabled at runtime (set_enabled(false), or the
// SDLO_NO_SIMD environment variable) without rebuilding; the ablation bench
// uses this to measure the contribution of vectorization on identical
// binaries, and tests use it to cross-check the two bodies against each
// other.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sdlo::simd {

/// Name of the widest instruction set this binary's vector bodies use:
/// "avx2", "sse2", "neon" or "scalar".
const char* isa();

/// True when the vector bodies are active. Defaults to true unless the
/// SDLO_NO_SIMD environment variable is set (to anything) at first use.
bool enabled();

/// Turns the vector bodies on or off process-wide (ablation / tests).
void set_enabled(bool on);

/// dst[i] += src[i] for i in [0, n). The bucket/histogram merge primitive.
void add_u64(std::uint64_t* dst, const std::uint64_t* src, std::size_t n);

/// out[i] = (base + i*stride) >> shift for i in [0, n): the cache-line
/// index sequence of a constant-stride run, batch-generated so the
/// consuming stack walk runs over a flat prefetchable buffer. Addresses
/// wrap mod 2^64, matching trace::Run::at.
void run_lines(std::uint64_t base, std::int64_t stride, int shift,
               std::uint64_t* out, std::size_t n);

/// First index i in [from, n) with a[i] != value, or n when every slot
/// matches. The dense-table occupancy scan (compaction, recency export).
std::size_t find_not_equal(const std::uint64_t* a, std::size_t n,
                           std::size_t from, std::uint64_t value);

}  // namespace sdlo::simd
