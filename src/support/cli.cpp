#include "support/cli.hpp"

#include <cstdlib>
#include <iostream>

#include "support/check.hpp"
#include "support/string_util.hpp"

namespace sdlo {

CommandLine::CommandLine(int argc, const char* const* argv) {
  SDLO_EXPECTS(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

CommandLine& CommandLine::flag(const std::string& name,
                               const std::string& help) {
  registered_[name] = help;
  return *this;
}

bool CommandLine::finish() {
  SDLO_CHECK(!finished_, "CommandLine::finish called twice");
  finished_ = true;
  registered_.emplace("help", "print this help");
  registered_.emplace("version", "print the version and exit");
  if (values_.count("help") != 0) {
    std::cout << "usage: " << program_ << " [flags]\n";
    for (const auto& [name, help] : registered_) {
      std::cout << "  --" << name << "  " << help << "\n";
    }
    std::cout << "exit codes: 0 ok, 1 error, 2 truncated by budget\n";
    return false;
  }
  if (values_.count("version") != 0) {
    std::cout << kVersionString << "\n";
    return false;
  }
  for (const auto& [name, value] : values_) {
    (void)value;
    if (registered_.count(name) == 0) {
      throw ParseError("unknown flag --" + name + " (see --help)");
    }
  }
  return true;
}

void CommandLine::require_registered(const std::string& name) const {
  SDLO_CHECK(registered_.count(name) != 0,
             "flag --" + name + " queried but never registered");
}

bool CommandLine::has(const std::string& name) const {
  require_registered(name);
  return values_.count(name) != 0;
}

std::int64_t CommandLine::get_int(const std::string& name,
                                  std::int64_t def) const {
  require_registered(name);
  auto it = values_.find(name);
  return it == values_.end() ? def : parse_int(it->second);
}

double CommandLine::get_double(const std::string& name, double def) const {
  require_registered(name);
  auto it = values_.find(name);
  return it == values_.end() ? def : std::stod(it->second);
}

std::string CommandLine::get_string(const std::string& name,
                                    const std::string& def) const {
  require_registered(name);
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

bool CommandLine::get_bool(const std::string& name, bool def) const {
  require_registered(name);
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace sdlo
