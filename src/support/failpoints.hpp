// Failpoints: named fault-injection sites for robustness testing.
//
// A failpoint is a named hook compiled into a production code path. When
// disarmed (the default) a hook costs one relaxed atomic load. When armed —
// via the SDLO_FAILPOINTS environment variable or the programmatic
// ScopedFailpoint used by tests — the hook performs an injected fault:
//
//   throw       raise InjectedFault (a typed sdlo::Error) at the site
//   fail        report an allocation/IO denial the site must degrade from
//   delay:<ms>  sleep, widening race and timeout windows
//
// SDLO_FAILPOINTS is a comma-separated list of `site=action` specs, e.g.
//
//   SDLO_FAILPOINTS="sweep-dense-alloc=fail,artifact-write=throw"
//   SDLO_FAILPOINTS="pool-task=delay:20"
//
// The registered sites (kAllSites) sit at exactly the places where a
// resource-governed driver makes a robustness promise: the dense-engine
// allocations (must degrade to the hashed engines, bit-identically), the
// thread-pool submit/task boundary (a throwing task must surface from
// wait_idle(), never std::terminate), the fuzz artifact write (a killed
// write must never leave a truncated replay file), the oracle battery
// step (a failing oracle run must surface as a typed error from the CLI),
// the trace-spool write (a killed spool write must never leave a
// partial spool file behind at the destination path), and the serve
// daemon's accept/read/write/enqueue boundaries (a faulted connection must
// be dropped — never crash the daemon, hang a peer, leak a descriptor, or
// corrupt a concurrent response).
// tests/robustness_test.cpp walks this list and proves each promise.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace sdlo {

/// The typed error an armed `throw` failpoint raises.
class InjectedFault : public Error {
 public:
  using Error::Error;
};

namespace failpoints {

/// What an armed failpoint does when its site is hit.
enum class Action : std::uint8_t { kOff, kThrow, kFailAlloc, kDelay };

/// One armed failpoint configuration.
struct Spec {
  Action action = Action::kOff;
  int delay_ms = 0;  ///< kDelay only
};

/// Every registered injection site. Arming an unlisted name is allowed
/// (sites are matched by string), but these are the ones the code hits.
inline constexpr const char* kSweepDenseAlloc = "sweep-dense-alloc";
inline constexpr const char* kProfilerDenseAlloc = "profiler-dense-alloc";
inline constexpr const char* kPoolSubmit = "pool-submit";
inline constexpr const char* kPoolTask = "pool-task";
inline constexpr const char* kArtifactWrite = "artifact-write";
inline constexpr const char* kOracleStep = "oracle-step";
inline constexpr const char* kSpoolWrite = "spool-write";
inline constexpr const char* kServeAccept = "serve-accept";
inline constexpr const char* kServeRead = "serve-read";
inline constexpr const char* kServeWrite = "serve-write";
inline constexpr const char* kServeEnqueue = "serve-enqueue";

inline constexpr std::array<const char*, 11> kAllSites = {
    kSweepDenseAlloc, kProfilerDenseAlloc, kPoolSubmit, kPoolTask,
    kArtifactWrite,   kOracleStep,         kSpoolWrite, kServeAccept,
    kServeRead,       kServeWrite,         kServeEnqueue};

/// True when any failpoint is armed (env or scoped). The disarmed fast
/// path is a single relaxed atomic load.
bool armed();

/// Hook for non-allocation sites: no-op when the site is disarmed; throws
/// InjectedFault for `throw`; sleeps for `delay`. A `fail` spec on a
/// non-allocation site is a no-op.
void hit(const char* site);

/// Hook for allocation/IO-denial sites: returns true when the site should
/// behave as if the allocation was denied (`fail`); throws for `throw`;
/// sleeps (returning false) for `delay`.
bool fail_alloc(const char* site);

/// Parses one SDLO_FAILPOINTS-style spec value ("throw", "fail",
/// "delay:25"). Throws ParseError on malformed input.
Spec parse_spec(const std::string& value);

/// Arms failpoints from a full spec string ("a=throw,b=delay:5"); used by
/// the env-variable bootstrap and by tests. Throws ParseError on malformed
/// input. Returns the number of sites armed.
int configure(const std::string& specs);

/// Disarms every programmatically armed failpoint (env-armed ones
/// included). Intended for test teardown.
void clear();

/// Arms `site` for the lifetime of the object, then restores the previous
/// state. Nesting on the same site restores in LIFO order.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string site, Spec spec);
  ~ScopedFailpoint();

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string site_;
  Spec previous_;
  bool had_previous_ = false;
};

}  // namespace failpoints
}  // namespace sdlo
