// Deterministic, fast pseudo-random generator (splitmix64) used by
// property-based tests and randomized trace workloads. std::mt19937 is
// avoided in hot loops; splitmix64 is 1 mul + shifts per draw and its output
// sequence is stable across platforms, which keeps tests reproducible.
#pragma once

#include <cstdint>

namespace sdlo {

/// splitmix64: passes BigCrush on its output, period 2^64.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64 uniform random bits.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift reduction.
  std::uint64_t below(std::uint64_t bound) {
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace sdlo
