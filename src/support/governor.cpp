#include "support/governor.hpp"

#include <limits>

namespace sdlo {

const char* completeness_name(Completeness c) {
  return c == Completeness::kComplete ? "complete" : "truncated";
}

Deadline Deadline::after_seconds(double seconds) {
  Deadline d;
  const auto delta = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));
  d.at_ = Clock::now() + delta;
  return d;
}

Deadline Deadline::at(Clock::time_point when) {
  Deadline d;
  d.at_ = when;
  return d;
}

double Deadline::remaining_seconds() const {
  if (unlimited()) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(at_ - Clock::now()).count();
}

bool MemoryBudget::try_reserve(std::uint64_t bytes) {
  std::uint64_t cur = used_.load(std::memory_order_relaxed);
  for (;;) {
    if (bytes > limit_ || cur > limit_ - bytes) return false;
    if (used_.compare_exchange_weak(cur, cur + bytes,
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      return true;
    }
  }
}

void MemoryBudget::release(std::uint64_t bytes) {
  SDLO_EXPECTS(used_.load(std::memory_order_relaxed) >= bytes);
  used_.fetch_sub(bytes, std::memory_order_acq_rel);
}

MemoryReservation::MemoryReservation(MemoryBudget* budget,
                                     std::uint64_t bytes)
    : budget_(budget), bytes_(bytes) {
  if (budget_ != nullptr) ok_ = budget_->try_reserve(bytes_);
}

MemoryReservation::MemoryReservation(MemoryReservation&& other) noexcept
    : budget_(other.budget_), bytes_(other.bytes_), ok_(other.ok_) {
  other.budget_ = nullptr;
  other.ok_ = true;
}

MemoryReservation& MemoryReservation::operator=(
    MemoryReservation&& other) noexcept {
  if (this != &other) {
    if (budget_ != nullptr && ok_) budget_->release(bytes_);
    budget_ = other.budget_;
    bytes_ = other.bytes_;
    ok_ = other.ok_;
    other.budget_ = nullptr;
    other.ok_ = true;
  }
  return *this;
}

MemoryReservation::~MemoryReservation() {
  if (budget_ != nullptr && ok_) budget_->release(bytes_);
}

void Governor::check(const char* what) const {
  if (cancel.poll()) {
    throw BudgetExceeded(BudgetExceeded::Kind::kCancelled,
                         std::string(what) + ": cancelled");
  }
  if (deadline.expired()) {
    throw BudgetExceeded(BudgetExceeded::Kind::kDeadline,
                         std::string(what) + ": deadline exceeded");
  }
}

}  // namespace sdlo
