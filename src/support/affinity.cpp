#include "support/affinity.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

namespace sdlo::affinity {

namespace {

/// One node with every CPU the standard library can see — the fallback for
/// hosts without a sysfs node tree.
Topology single_node_topology() {
  Topology t;
  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<int> cpus;
  cpus.reserve(hw > 0 ? hw : 1);
  for (unsigned c = 0; c < (hw > 0 ? hw : 1); ++c) {
    cpus.push_back(static_cast<int>(c));
  }
  t.node_cpus.push_back(std::move(cpus));
  return t;
}

Topology probe_host() {
#if defined(__linux__)
  std::vector<std::string> cpulists;
  for (int node = 0;; ++node) {
    std::ifstream in("/sys/devices/system/node/node" +
                     std::to_string(node) + "/cpulist");
    if (!in.good()) break;
    std::string text;
    std::getline(in, text);
    cpulists.push_back(text);
  }
  Topology t = topology_from_cpulists(cpulists);
  if (t.num_nodes() > 0) return t;
#endif
  return single_node_topology();
}

}  // namespace

std::vector<int> parse_cpulist(const std::string& text) {
  std::vector<int> cpus;
  std::size_t i = 0;
  const auto skip_space = [&] {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
    }
  };
  const auto parse_int = [&](long* out) {
    skip_space();
    if (i >= text.size() ||
        std::isdigit(static_cast<unsigned char>(text[i])) == 0) {
      return false;
    }
    long v = 0;
    while (i < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
      v = v * 10 + (text[i] - '0');
      if (v > 1 << 20) return false;  // implausible CPU id
      ++i;
    }
    *out = v;
    return true;
  };
  skip_space();
  if (i >= text.size()) return cpus;
  for (;;) {
    long lo = 0;
    if (!parse_int(&lo)) return {};
    long hi = lo;
    skip_space();
    if (i < text.size() && text[i] == '-') {
      ++i;
      if (!parse_int(&hi) || hi < lo) return {};
    }
    for (long c = lo; c <= hi; ++c) cpus.push_back(static_cast<int>(c));
    skip_space();
    if (i >= text.size()) break;
    if (text[i] != ',') return {};
    ++i;
    skip_space();
    if (i >= text.size()) break;  // tolerate a trailing comma
  }
  std::sort(cpus.begin(), cpus.end());
  return cpus;
}

Topology topology_from_cpulists(const std::vector<std::string>& cpulists) {
  Topology t;
  for (const std::string& text : cpulists) {
    std::vector<int> cpus = parse_cpulist(text);
    if (!cpus.empty()) t.node_cpus.push_back(std::move(cpus));
  }
  return t;
}

const Topology& host_topology() {
  static const Topology t = probe_host();
  return t;
}

bool pinning_supported() {
#if defined(__linux__)
  return true;
#else
  return false;
#endif
}

bool pin_current_thread_to_cpu(int cpu) {
#if defined(__linux__)
  if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

bool pin_current_thread_to_node(int node) {
#if defined(__linux__)
  const Topology& t = host_topology();
  if (node < 0 || node >= t.num_nodes()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (int cpu : t.node_cpus[static_cast<std::size_t>(node)]) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) {
      CPU_SET(static_cast<unsigned>(cpu), &set);
      any = true;
    }
  }
  if (!any) return false;
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)node;
  return false;
#endif
}

}  // namespace sdlo::affinity
