#include "support/failpoints.hpp"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "support/string_util.hpp"

namespace sdlo::failpoints {

namespace {

struct Registry {
  std::mutex mu;
  std::map<std::string, Spec> specs;
};

Registry& registry() {
  static Registry r;
  return r;
}

// Number of armed sites; -1 until the environment has been parsed. The
// disarmed fast path in armed() is a single relaxed load of this.
std::atomic<int> g_active{-1};

void bootstrap_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    int armed_count = 0;
    if (const char* env = std::getenv("SDLO_FAILPOINTS")) {
      Registry& r = registry();
      std::scoped_lock lock(r.mu);
      for (const auto& part : split(env, ',')) {
        const std::string item(trim(part));
        if (item.empty()) continue;
        const auto eq = item.find('=');
        if (eq == std::string::npos) {
          throw ParseError("SDLO_FAILPOINTS entry missing '=': " + item);
        }
        r.specs[std::string(trim(item.substr(0, eq)))] =
            parse_spec(std::string(trim(item.substr(eq + 1))));
      }
      armed_count = static_cast<int>(r.specs.size());
    }
    // 0 (nothing armed) or the env-armed count; scoped arms add to this.
    g_active.store(armed_count, std::memory_order_release);
  });
}

Spec lookup(const char* site) {
  Registry& r = registry();
  std::scoped_lock lock(r.mu);
  const auto it = r.specs.find(site);
  return it == r.specs.end() ? Spec{} : it->second;
}

void apply_delay(const Spec& s) {
  if (s.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(s.delay_ms));
  }
}

}  // namespace

bool armed() {
  if (g_active.load(std::memory_order_acquire) < 0) bootstrap_from_env();
  return g_active.load(std::memory_order_acquire) > 0;
}

void hit(const char* site) {
  if (!armed()) return;
  const Spec s = lookup(site);
  switch (s.action) {
    case Action::kThrow:
      throw InjectedFault(std::string("failpoint '") + site +
                          "' triggered");
    case Action::kDelay:
      apply_delay(s);
      return;
    case Action::kFailAlloc:
    case Action::kOff:
      return;
  }
}

bool fail_alloc(const char* site) {
  if (!armed()) return false;
  const Spec s = lookup(site);
  switch (s.action) {
    case Action::kThrow:
      throw InjectedFault(std::string("failpoint '") + site +
                          "' triggered");
    case Action::kDelay:
      apply_delay(s);
      return false;
    case Action::kFailAlloc:
      return true;
    case Action::kOff:
      return false;
  }
  return false;
}

Spec parse_spec(const std::string& value) {
  if (value == "throw") return Spec{Action::kThrow, 0};
  if (value == "fail") return Spec{Action::kFailAlloc, 0};
  if (starts_with(value, "delay:")) {
    const std::int64_t ms = parse_int(value.substr(6));
    if (ms < 0) throw ParseError("failpoint delay must be >= 0: " + value);
    return Spec{Action::kDelay, static_cast<int>(ms)};
  }
  throw ParseError("unknown failpoint action: '" + value +
                   "' (expected throw, fail, or delay:<ms>)");
}

int configure(const std::string& specs) {
  bootstrap_from_env();
  int armed_count = 0;
  Registry& r = registry();
  std::scoped_lock lock(r.mu);
  for (const auto& part : split(specs, ',')) {
    const std::string item(trim(part));
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      throw ParseError("failpoint spec missing '=': " + item);
    }
    const std::string site(trim(item.substr(0, eq)));
    const Spec spec = parse_spec(std::string(trim(item.substr(eq + 1))));
    if (r.specs.emplace(site, spec).second) {
      ++armed_count;
      g_active.fetch_add(1, std::memory_order_acq_rel);
    } else {
      r.specs[site] = spec;
    }
  }
  return armed_count;
}

void clear() {
  bootstrap_from_env();
  Registry& r = registry();
  std::scoped_lock lock(r.mu);
  g_active.fetch_sub(static_cast<int>(r.specs.size()),
                     std::memory_order_acq_rel);
  r.specs.clear();
}

ScopedFailpoint::ScopedFailpoint(std::string site, Spec spec)
    : site_(std::move(site)) {
  bootstrap_from_env();
  Registry& r = registry();
  std::scoped_lock lock(r.mu);
  const auto it = r.specs.find(site_);
  if (it != r.specs.end()) {
    had_previous_ = true;
    previous_ = it->second;
    it->second = spec;
  } else {
    r.specs.emplace(site_, spec);
    g_active.fetch_add(1, std::memory_order_acq_rel);
  }
}

ScopedFailpoint::~ScopedFailpoint() {
  Registry& r = registry();
  std::scoped_lock lock(r.mu);
  if (had_previous_) {
    r.specs[site_] = previous_;
  } else {
    r.specs.erase(site_);
    g_active.fetch_sub(1, std::memory_order_acq_rel);
  }
}

}  // namespace sdlo::failpoints
