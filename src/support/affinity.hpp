// NUMA topology detection and worker pinning, without hwloc.
//
// Shared-memory multiprocessors with more than one memory node pay a
// bandwidth and latency penalty when a worker's chunk buffers are
// first-touched on one node and profiled from another. The thread pool can
// therefore pin its workers round-robin across NUMA nodes, so each worker's
// dense tables are allocated (first-touch) and consumed on the same node.
//
// Detection reads the Linux sysfs tree (/sys/devices/system/node/node*/
// cpulist); every other platform — and any host where the tree is absent —
// reports a single node holding every online CPU, and pinning becomes a
// no-op. Pinning itself is sched_setaffinity on Linux and unsupported
// elsewhere. Everything degrades silently: a denied or unsupported pin is
// reported, never fatal, and single-node hosts skip pinning entirely (the
// policy default is off; see parallel::ThreadPool).
#pragma once

#include <string>
#include <vector>

namespace sdlo::affinity {

/// The host's NUMA layout: per node, the CPU ids that belong to it.
struct Topology {
  std::vector<std::vector<int>> node_cpus;

  int num_nodes() const { return static_cast<int>(node_cpus.size()); }
  int num_cpus() const {
    int n = 0;
    for (const auto& cpus : node_cpus) n += static_cast<int>(cpus.size());
    return n;
  }
};

/// Parses a sysfs cpulist string ("0-3,8,10-11") into ascending CPU ids.
/// Whitespace and a trailing newline are tolerated; malformed input yields
/// an empty list (detection then falls back to a single node).
std::vector<int> parse_cpulist(const std::string& text);

/// Builds a topology from sysfs-style (node id, cpulist) pairs — the pure
/// core of host detection, separated for tests. Nodes with no parsed CPUs
/// are dropped; no valid nodes yields an empty topology.
Topology topology_from_cpulists(const std::vector<std::string>& cpulists);

/// The host topology, probed once from sysfs. Hosts without the sysfs tree
/// (or non-Linux builds) report one node with every online CPU.
const Topology& host_topology();

/// True when the platform can pin threads at all (Linux).
bool pinning_supported();

/// Pins the calling thread to one CPU. Returns false when unsupported or
/// denied by the kernel.
bool pin_current_thread_to_cpu(int cpu);

/// Pins the calling thread to every CPU of `node` (host_topology() index).
/// Returns false when unsupported, out of range, or denied.
bool pin_current_thread_to_node(int node);

}  // namespace sdlo::affinity
