// Overflow-aware 64-bit arithmetic.
//
// Miss counts and stack distances for paper-scale problems reach ~1e11
// (Table 2 row 6 alone is 1.4e8 misses over 3e8 accesses; symbolic products
// of four 2048 bounds reach 1.8e13), so all counting arithmetic goes through
// these helpers, which detect overflow instead of silently wrapping.
#pragma once

#include <cstdint>
#include <limits>

#include "support/check.hpp"

namespace sdlo {

/// Saturating value used to represent "infinite" stack distance (cold miss).
inline constexpr std::int64_t kInfDistance =
    std::numeric_limits<std::int64_t>::max();

/// a + b with overflow detection. Throws ContractViolation on overflow.
inline std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  SDLO_CHECK(!__builtin_add_overflow(a, b, &r), "i64 addition overflow");
  return r;
}

/// a * b with overflow detection. Throws ContractViolation on overflow.
inline std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  SDLO_CHECK(!__builtin_mul_overflow(a, b, &r), "i64 multiply overflow");
  return r;
}

/// a + b saturating at kInfDistance; treats either operand being
/// kInfDistance as infinity. Used for stack-distance accumulation.
inline std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  if (a == kInfDistance || b == kInfDistance) return kInfDistance;
  std::int64_t r = 0;
  if (__builtin_add_overflow(a, b, &r)) return kInfDistance;
  return r;
}

/// a * b saturating at kInfDistance (operands must be non-negative).
inline std::int64_t sat_mul(std::int64_t a, std::int64_t b) {
  SDLO_EXPECTS(a >= 0 && b >= 0);
  if (a == kInfDistance || b == kInfDistance) return kInfDistance;
  std::int64_t r = 0;
  if (__builtin_mul_overflow(a, b, &r)) return kInfDistance;
  return r;
}

/// Floor division for possibly-negative numerators (b > 0).
inline std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  SDLO_EXPECTS(b > 0);
  std::int64_t q = a / b;
  if ((a % b != 0) && (a < 0)) --q;
  return q;
}

/// Ceiling division for possibly-negative numerators (b > 0).
inline std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  SDLO_EXPECTS(b > 0);
  std::int64_t q = a / b;
  if ((a % b != 0) && (a > 0)) ++q;
  return q;
}

}  // namespace sdlo
