// Wall-clock timing helpers used by the kernels and SMP calibration.
#pragma once

#include <chrono>

namespace sdlo {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sdlo
