// ASCII table printer used by the bench binaries to emit paper-style tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sdlo {

/// Column alignment for TextTable.
enum class Align { kLeft, kRight };

/// Accumulates rows of strings and renders an aligned ASCII table, e.g.
///
///   TextTable t({"Loop Bounds", "Predicted", "Actual"});
///   t.add_row({"(256,256)", "1,048,576", "1,066,774"});
///   t.print(std::cout);
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Sets per-column alignment (default: left for col 0, right otherwise).
  void set_align(std::size_t col, Align a);

  /// Renders with a header rule and column padding.
  void print(std::ostream& os) const;

  /// Renders as CSV (no padding), for machine consumption.
  void print_csv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> align_;
};

}  // namespace sdlo
