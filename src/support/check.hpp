// Contract-checking macros and the library-wide exception hierarchy.
//
// Following the C++ Core Guidelines (I.6/I.8, E.2) we express preconditions
// and invariants as checked contracts that throw typed exceptions rather than
// aborting: the analysis code is used inside long-running drivers (tile
// search, benches) where a diagnosable failure beats a core dump.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace sdlo {

/// Base class of all exceptions thrown by the sdlo library.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a precondition / postcondition / invariant check fails.
class ContractViolation : public Error {
 public:
  using Error::Error;
};

/// A 1-based position in a source text; {0, 0} means "unknown".
struct SourceLoc {
  int line = 0;
  int column = 0;

  bool known() const { return line > 0; }
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// Thrown when user-provided input (IR text, tensor expressions, CLI flags)
/// is malformed. Carries the source position when the thrower knows it.
class ParseError : public Error {
 public:
  using Error::Error;
  ParseError(const std::string& msg, SourceLoc where)
      : Error(msg), loc(where) {}

  SourceLoc loc;
};

/// Thrown when an IR structure violates the constrained class of programs the
/// model supports (see DESIGN.md §3).
class UnsupportedProgram : public Error {
 public:
  using Error::Error;
};

/// Thrown when a resource-governed operation (see support/governor.hpp)
/// exceeds its deadline or memory budget, or is cancelled, at a point where
/// no truncated-but-valid partial result can be produced. Drivers that CAN
/// degrade return Completeness::kTruncated instead of throwing this.
class BudgetExceeded : public Error {
 public:
  enum class Kind : std::uint8_t { kDeadline, kMemory, kCancelled };

  BudgetExceeded(Kind k, const std::string& msg) : Error(msg), kind(k) {}

  Kind kind;
};

namespace detail {
[[noreturn]] void contract_fail(const char* kind, const char* cond,
                                const char* file, int line,
                                const std::string& msg);
}  // namespace detail

}  // namespace sdlo

/// Precondition check: active in all build types.
#define SDLO_EXPECTS(cond)                                                 \
  do {                                                                     \
    if (!(cond))                                                           \
      ::sdlo::detail::contract_fail("Precondition", #cond, __FILE__,       \
                                    __LINE__, {});                         \
  } while (false)

/// Postcondition check: active in all build types.
#define SDLO_ENSURES(cond)                                                 \
  do {                                                                     \
    if (!(cond))                                                           \
      ::sdlo::detail::contract_fail("Postcondition", #cond, __FILE__,      \
                                    __LINE__, {});                         \
  } while (false)

/// General invariant check with a message.
#define SDLO_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::sdlo::detail::contract_fail("Check", #cond, __FILE__, __LINE__,    \
                                    (msg));                                \
  } while (false)
