#include "support/table.hpp"

#include <algorithm>
#include <ostream>

#include "support/check.hpp"

namespace sdlo {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  SDLO_EXPECTS(!header_.empty());
  align_.assign(header_.size(), Align::kRight);
  align_[0] = Align::kLeft;
}

void TextTable::add_row(std::vector<std::string> cells) {
  SDLO_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::set_align(std::size_t col, Align a) {
  SDLO_EXPECTS(col < align_.size());
  align_[col] = a;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = width[c] - row[c].size();
      os << ' ';
      if (align_[c] == Align::kRight) os << std::string(pad, ' ');
      os << row[c];
      if (align_[c] == Align::kLeft) os << std::string(pad, ' ');
      os << " |";
    }
    os << "\n";
  };
  emit(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace sdlo
