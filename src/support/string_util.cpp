#include "support/string_util.hpp"

#include <cctype>
#include <charconv>
#include <sstream>

#include "support/check.hpp"

namespace sdlo {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_trimmed(std::string_view s, char delim) {
  std::vector<std::string> out;
  for (const auto& piece : split(s, delim)) {
    auto t = trim(piece);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

bool is_integer(std::string_view s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

std::int64_t parse_int(std::string_view s) {
  std::int64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ParseError("malformed integer: '" + std::string(s) + "'");
  }
  return v;
}

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_')) {
    return false;
  }
  for (char c : s.substr(1)) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

std::string with_commas(std::int64_t v) {
  const bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

}  // namespace sdlo
