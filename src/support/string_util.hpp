// Small string helpers shared by the IR/tensor-expression parsers and the
// table printers. Kept deliberately minimal: no locale dependence, ASCII only.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sdlo {

/// Strip leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on a delimiter character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on a delimiter and trim each piece; empty pieces are dropped.
std::vector<std::string> split_trimmed(std::string_view s, char delim);

/// True iff `s` is a non-empty ASCII decimal integer (optional leading '-').
bool is_integer(std::string_view s);

/// Parse a decimal integer; throws ParseError on malformed input.
std::int64_t parse_int(std::string_view s);

/// True iff `s` is a valid identifier: [A-Za-z_][A-Za-z0-9_]*.
bool is_identifier(std::string_view s);

/// Group digits with commas for human-readable counts: 1234567 -> "1,234,567".
std::string with_commas(std::int64_t v);

/// Fixed-precision double formatting without locale surprises.
std::string format_double(double v, int precision);

/// True iff `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

}  // namespace sdlo
