// Minimal command-line flag parser for the bench and example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name`. Unknown
// flags raise ParseError so typos in bench invocations fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sdlo {

/// Parsed command line. Construct once from (argc, argv), then query flags.
class CommandLine {
 public:
  CommandLine(int argc, const char* const* argv);

  /// Registers a flag with help text; returns *this for chaining. Querying a
  /// flag that was never registered is a ContractViolation (catches typos in
  /// the binary itself).
  CommandLine& flag(const std::string& name, const std::string& help);

  /// After registering all flags, validates that every flag given by the user
  /// was registered. Call exactly once. Prints help and exits(0) if --help.
  void finish();

  bool has(const std::string& name) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  std::string get_string(const std::string& name,
                         const std::string& def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// argv[0].
  const std::string& program() const { return program_; }

 private:
  void require_registered(const std::string& name) const;

  std::string program_;
  std::map<std::string, std::string> values_;
  std::map<std::string, std::string> registered_;
  std::vector<std::string> positional_;
  bool finished_ = false;
};

}  // namespace sdlo
