// Minimal command-line flag parser for the bench and example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name`. Unknown
// flags raise ParseError so typos in bench invocations fail loudly.
//
// Every sdlo binary shares one exit-code taxonomy (ExitCode below):
// 0 = success, 1 = any error (bad usage, parse failure, oracle mismatch,
// injected fault), 2 = the run was truncated by a resource budget
// (--deadline / --mem-budget / cancellation) and the printed result is a
// valid but partial answer.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sdlo {

/// Process exit codes shared by every sdlo binary.
enum class ExitCode : int {
  kOk = 0,         ///< completed; output is a full answer
  kError = 1,      ///< usage/parse/runtime error; output may be partial
  kTruncated = 2,  ///< a budget tripped; output is a valid partial answer
};

inline int to_int(ExitCode c) { return static_cast<int>(c); }

/// Version string printed by --version (kept in lockstep with the CMake
/// project version).
inline constexpr const char* kVersionString = "sdlo 1.0.0";

/// Bare version number embedded in every JSON emitter's "version" field
/// (the tail of kVersionString, past the "sdlo " prefix).
inline constexpr const char* kVersionNumber = kVersionString + 5;

/// Parsed command line. Construct once from (argc, argv), then query flags.
class CommandLine {
 public:
  CommandLine(int argc, const char* const* argv);

  /// Registers a flag with help text; returns *this for chaining. Querying a
  /// flag that was never registered is a ContractViolation (catches typos in
  /// the binary itself).
  CommandLine& flag(const std::string& name, const std::string& help);

  /// After registering all flags, validates that every flag given by the
  /// user was registered. Call exactly once. Handles --help and --version
  /// by printing to stdout and returning false — the caller should then
  /// exit with ExitCode::kOk (no std::exit: destructors still run). Returns
  /// true when execution should proceed.
  bool finish();

  bool has(const std::string& name) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  std::string get_string(const std::string& name,
                         const std::string& def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// argv[0].
  const std::string& program() const { return program_; }

 private:
  void require_registered(const std::string& name) const;

  std::string program_;
  std::map<std::string, std::string> values_;
  std::map<std::string, std::string> registered_;
  std::vector<std::string> positional_;
  bool finished_ = false;
};

}  // namespace sdlo
