// Resource-governed execution: deadlines, memory budgets and cooperative
// cancellation for the long-running drivers (sweep engine, stack-distance
// profiler, tile search, fuzzing battery, SMP calibration).
//
// All of these drivers used to run open-loop: no time ceiling, no memory
// ceiling, no way to stop one from the outside. The governor closes the
// loop without ever tearing a driver down mid-structure: engines *poll* a
// Governor at safe points (every `poll_interval` run groups, between oracle
// families, between refinement rounds) and, when a budget trips, stop
// consuming input and return the exact result of the prefix they did
// consume, marked Completeness::kTruncated. Truncation degrades a result —
// it never corrupts one: a truncated sweep's miss counts are the bit-exact
// counts of the trace prefix, hence a lower bound on the full-trace counts.
//
// Memory ceilings work the same way by *downgrade* rather than failure: the
// dense direct-indexed engines ask the budget for their footprint-sized
// tables up front and, when denied, fall back to the hashed engines (which
// are differentially tested to be bit-identical) instead of throwing
// std::bad_alloc from deep inside a worker thread.
//
// Everything here is thread-safe: tokens and budgets are shared atomics, a
// Deadline is an immutable time point, and one Governor may be polled
// concurrently from every worker of a parallel::ThreadPool.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "support/check.hpp"

namespace sdlo {

/// Whether a result covers its whole input or a budget-truncated prefix.
enum class Completeness : std::uint8_t { kComplete, kTruncated };

/// Name for reports ("complete" / "truncated").
const char* completeness_name(Completeness c);

/// A fixed point on the steady clock. Immutable and freely copyable;
/// default-constructed deadlines never expire.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  /// A deadline that never expires.
  static Deadline never() { return Deadline(); }

  /// Expires `seconds` from now (<= 0 means already expired).
  static Deadline after_seconds(double seconds);

  /// Expires at the given steady-clock instant.
  static Deadline at(Clock::time_point when);

  bool unlimited() const { return at_ == Clock::time_point::max(); }
  bool expired() const {
    return !unlimited() && Clock::now() >= at_;
  }

  /// Seconds until expiry; negative once expired, +infinity when unlimited.
  double remaining_seconds() const;

 private:
  Clock::time_point at_ = Clock::time_point::max();
};

/// Cooperative cancellation flag. Copies share one state, so a token handed
/// to a driver can be cancelled from another thread (or from a signal-like
/// control path) and every concurrent poller observes it. cancel_after()
/// arms a deterministic countdown — cancel on the n-th poll() — which is
/// how tests trip a driver at an exact trace prefix without timing races.
class CancellationToken {
 public:
  CancellationToken() : state_(std::make_shared<State>()) {}

  /// Requests cancellation; every copy of this token observes it.
  void request_cancel() const {
    state_->cancelled.store(true, std::memory_order_release);
  }

  /// True once cancellation was requested (no countdown side effects).
  bool cancelled() const {
    return state_->cancelled.load(std::memory_order_acquire);
  }

  /// Arms the token to cancel itself on the `polls`-th subsequent poll().
  void cancel_after(std::int64_t polls) const {
    SDLO_EXPECTS(polls >= 1);
    state_->countdown.store(polls, std::memory_order_release);
  }

  /// Polling read: decrements an armed countdown (cancelling at zero) and
  /// returns cancelled(). Safe to call concurrently.
  bool poll() const {
    if (state_->countdown.load(std::memory_order_relaxed) > 0 &&
        state_->countdown.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      request_cancel();
    }
    return cancelled();
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<std::int64_t> countdown{0};  // 0 = not armed
  };
  std::shared_ptr<State> state_;
};

/// A byte ceiling shared by every allocation site of one governed run.
/// try_reserve() is an atomic all-or-nothing claim; engines that are denied
/// downgrade to their non-dense implementation rather than failing.
class MemoryBudget {
 public:
  /// `limit_bytes` is the ceiling; 0 denies every reservation.
  explicit MemoryBudget(std::uint64_t limit_bytes) : limit_(limit_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Claims `bytes` against the ceiling; false when it would exceed it.
  bool try_reserve(std::uint64_t bytes);

  /// Returns a previous successful reservation.
  void release(std::uint64_t bytes);

  std::uint64_t limit() const { return limit_; }
  std::uint64_t used() const {
    return used_.load(std::memory_order_relaxed);
  }

 private:
  const std::uint64_t limit_;
  std::atomic<std::uint64_t> used_{0};
};

/// RAII claim on a MemoryBudget. ok() reports whether the claim succeeded;
/// a claim against a null budget is trivially ok (unlimited memory).
class MemoryReservation {
 public:
  MemoryReservation() = default;

  /// Claims `bytes` from `budget` (nullptr = unlimited, always ok).
  MemoryReservation(MemoryBudget* budget, std::uint64_t bytes);

  /// A denied claim (ok() == false) tied to no budget — how fault
  /// injection simulates an allocation denial.
  static MemoryReservation denied() {
    MemoryReservation r;
    r.ok_ = false;
    return r;
  }

  MemoryReservation(MemoryReservation&& other) noexcept;
  MemoryReservation& operator=(MemoryReservation&& other) noexcept;
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;
  ~MemoryReservation();

  bool ok() const { return ok_; }
  std::uint64_t bytes() const { return bytes_; }

 private:
  MemoryBudget* budget_ = nullptr;
  std::uint64_t bytes_ = 0;
  bool ok_ = true;
};

/// The bundle a driver is governed by: a deadline, a cancellation token and
/// an optional memory budget. Passed by const pointer everywhere; nullptr
/// means "ungoverned" and preserves the historical open-loop behavior.
struct Governor {
  Deadline deadline = Deadline::never();
  CancellationToken cancel;
  /// Byte ceiling for the dense direct-indexed tables; nullptr = unlimited.
  MemoryBudget* memory = nullptr;
  /// Run groups (or equivalent units of work) between should_stop() polls.
  /// One poll is ~two atomic loads plus a clock read, so the default keeps
  /// polling overhead well under 0.1% of the access path.
  std::uint64_t poll_interval = 1024;

  /// True when the driver should stop consuming input and return its
  /// truncated-but-valid partial result. Advances the token countdown.
  bool should_stop() const {
    return cancel.poll() || deadline.expired();
  }

  /// Throwing variant for call sites that cannot produce a partial result:
  /// raises BudgetExceeded naming `what`.
  void check(const char* what) const;
};

/// should_stop() on a nullable governor.
inline bool governor_should_stop(const Governor* g) {
  return g != nullptr && g->should_stop();
}

}  // namespace sdlo
