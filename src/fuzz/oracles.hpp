// N-way differential oracles for the model/simulator stack.
//
// The paper's central claim (§4-§5, Tables 2-3) is that the symbolic
// stack-distance model matches a fully-associative LRU simulator *exactly*
// on the constrained TCE loop class. The repo now carries several
// independent implementations of that semantics:
//
//   model::predict_misses        symbolic analysis + coordinate enumeration
//   model::symbolic_sweep        analytic full-curve stack-distance
//                                histogram (no trace walk)
//   cachesim::simulate_lru       arena LRU cache fed by the trace walker
//   cachesim::simulate_lru_lines line-granular variant of the above
//   cachesim::profile_stack_distances / ProfileResult::result
//                                one-pass exact stack-distance histogram
//   cachesim::simulate_sweep     marker-augmented multi-capacity LRU stack
//   cachesim::simulate_sweep_partitioned
//                                time-partitioned parallel stack distance
//                                (per-chunk engines + exact hole merge)
//   trace::SpooledTrace / RunTrace
//                                out-of-core spool round trip and the
//                                budget-governed in-memory group stream
//   cachesim::simulate_many      shared-walk battery of real cache models
//   cachesim::simulate_set_assoc set-associative geometry (edge cases of
//                                which must degenerate to the above)
//   trace::walk / walk_batched / walk_runs
//                                three trace delivery shapes over one plan
//
// The engines that consume the run-compressed trace (sweep, many, and the
// profiler in trace::TraceMode::kRuns) are enrolled as first-class oracles:
// each runs in both trace modes and must match the per-access references
// bit for bit, misses_by_site included — so every bulk fast path is
// differentially pinned to the naive semantics.
//
// check_program() cross-checks all of them on one program across a
// capacity / line-size / associativity ladder and reports every
// disagreement. Any mismatch is a bug somewhere in the stack by
// construction; the reducer (fuzz/reducer.hpp) can then shrink the
// offending program to a minimal counterexample.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/generator.hpp"
#include "ir/program.hpp"
#include "support/governor.hpp"
#include "symbolic/expr.hpp"

namespace sdlo::fuzz {

/// Which ladders the oracles sweep, and which oracle families run.
struct OracleOptions {
  /// Element capacities for the model-vs-profiler comparison (line size 1).
  std::vector<std::int64_t> capacities = {1, 2, 3, 5, 8, 13, 21, 55, 200,
                                          5000};
  /// Line sizes (elements, powers of two) for line-granular oracles.
  std::vector<std::int64_t> line_sizes = {1, 2, 4};
  /// Capacities *in lines* for line-granular and set-associative oracles
  /// (element capacity = lines * line_size).
  std::vector<std::int64_t> capacity_lines = {1, 2, 3, 8, 21};
  /// Associativities for the set-associative oracles.
  std::vector<int> ways_ladder = {1, 2};
  /// Programs whose trace exceeds this are skipped (report.skipped).
  std::uint64_t max_trace_accesses = 2'000'000;
  /// Per-site capacity for the model per-site oracle.
  std::int64_t per_site_capacity = 21;

  bool check_roundtrip = true;  ///< parse(print(p)) structural equality
  bool check_walker = true;     ///< walk vs walk_batched / walk_runs shapes
  bool check_model = true;      ///< model vs exact stack-distance profile
  /// Analytic capacity sweep: when model::symbolic_sweep answers with
  /// Confidence::kExact its histogram must be bit-identical to the trace
  /// profiler's and its curve must match simulate_sweep at the capacity
  /// ladder plus every crossing point (misses_by_site included).
  bool check_symbolic = true;
  bool check_profile = true;    ///< profiler (both modes) vs simulate_lru*
  bool check_sweep = true;      ///< sweep + many (both modes) vs reference
  /// Time-partitioned parallel sweep and the out-of-core engines: the
  /// partitioned hole-merge (several chunk counts), the spool round trip
  /// (SpooledTrace) and the materialized RunTrace must all be bit-identical
  /// to the sequential simulate_sweep, misses_by_site included.
  bool check_partitioned = true;
  bool check_set_assoc = true;  ///< set-associative edge geometries
  bool check_lint = true;       ///< generated programs lint error-free
  /// Brute-force verification of DOALL-safety claims: every loop the
  /// analysis pass marks safe is executed element-wise and checked for
  /// cross-iteration conflicts; loops flagged unsafe are excluded.
  bool check_parallel = true;
  /// Budget-degradation oracle: a zero memory budget forces the sweep
  /// engine and the profiler onto their hashed fallbacks, which must be
  /// bit-identical to the unbudgeted dense runs.
  bool check_budgeted = true;
  /// Brute-force dependence oracle: replay the trace recording every
  /// observed (src site, dst site, kind, direction vector) tuple and
  /// require set equality with the expansion of the dependence pass's
  /// reported direction vectors — both soundness (nothing observed is
  /// unreported) and precision (every reported vector is realized).
  bool check_dependence = true;
  /// Transformation-legality oracle: run the advisor and, for every
  /// recommendation, require (a) an identical dataflow fingerprint of the
  /// transformed program (every read sees the same producing write) and
  /// (b) the claimed per-site miss counts to match the exact profiler.
  bool check_advise = true;
  /// Serve-vs-CLI differential oracle: an in-process serve::Service must
  /// answer every analysis verb with a payload byte-identical to the
  /// shared CLI emitter's document, and a repeated request must hit the
  /// memo cache and return the *same bytes* again.
  bool check_serve = true;
  /// Optional resource governor: the battery polls it between oracle
  /// families and, when it trips, returns the partial report with
  /// `truncated` set instead of running the remaining families.
  const Governor* governor = nullptr;
};

/// The selectable oracle family names, in battery order ("roundtrip",
/// "walker", ..., "serve") — the vocabulary of `sdlo fuzz --only`.
std::vector<std::string> oracle_family_names();

/// Applies `--only FAMILY,FAMILY`: disables every family, then re-enables
/// the named ones. An empty string is a no-op (all families stay on); an
/// unknown name throws sdlo::Error listing every valid family.
void apply_family_filter(OracleOptions& opts, const std::string& only);

/// One disagreement between two implementations.
struct Mismatch {
  std::string oracle;  ///< oracle family, e.g. "model-vs-profile"
  std::string detail;  ///< the two values and the configuration they differ at
};

/// Outcome of running every oracle family on one program.
struct OracleReport {
  bool skipped = false;        ///< trace exceeded max_trace_accesses
  bool truncated = false;      ///< a governor budget stopped the battery
  std::uint64_t accesses = 0;  ///< trace length (0 when skipped early)
  std::vector<Mismatch> mismatches;

  bool ok() const { return mismatches.empty(); }
};

/// Runs every enabled oracle family on `prog` bound with `env`.
/// The program must be validated and `env` must bind every free symbol.
OracleReport check_program(const ir::Program& prog, const sym::Env& env,
                           const OracleOptions& opts = {});

/// Renders a reproducible failure report: the seed and stream index, the
/// environment, the ir::Printer dump of the program (replayable through
/// ir::Parser), and every mismatch. This is the string every fuzz/property
/// failure must print so CI logs alone suffice to reproduce.
std::string describe_failure(const GeneratedProgram& gp,
                             const OracleReport& report);

/// Same rendering for a program that did not come from the generator.
std::string describe_failure(const ir::Program& prog, const sym::Env& env,
                             const OracleReport& report);

}  // namespace sdlo::fuzz
