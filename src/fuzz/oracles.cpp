#include "fuzz/oracles.hpp"

#include <sstream>

#include "cachesim/sim.hpp"
#include "cachesim/sweep.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "model/analyzer.hpp"
#include "trace/walker.hpp"

namespace sdlo::fuzz {

namespace {

using cachesim::SimResult;

void add_mismatch(OracleReport& report, const std::string& oracle,
                  const std::string& detail) {
  report.mismatches.push_back(Mismatch{oracle, detail});
}

/// Compares two SimResults field by field; any difference is one mismatch
/// naming the first differing field.
void compare_results(OracleReport& report, const std::string& oracle,
                     const std::string& where, const SimResult& got,
                     const SimResult& want) {
  std::ostringstream os;
  os << where << ": ";
  if (got.accesses != want.accesses) {
    os << "accesses " << got.accesses << " != " << want.accesses;
  } else if (got.misses != want.misses) {
    os << "misses " << got.misses << " != " << want.misses;
  } else if (got.misses_by_site != want.misses_by_site) {
    std::size_t s = 0;
    while (s < got.misses_by_site.size() &&
           s < want.misses_by_site.size() &&
           got.misses_by_site[s] == want.misses_by_site[s]) {
      ++s;
    }
    os << "misses_by_site[" << s << "] ";
    if (s < got.misses_by_site.size()) os << got.misses_by_site[s];
    else os << "<absent>";
    os << " != ";
    if (s < want.misses_by_site.size()) os << want.misses_by_site[s];
    else os << "<absent>";
  } else {
    return;  // equal
  }
  add_mismatch(report, oracle, os.str());
}

void check_roundtrip(OracleReport& report, const ir::Program& prog) {
  const std::string text = ir::to_code_string(prog);
  try {
    const ir::Program reparsed = ir::parse_program(text);
    if (!ir::structurally_equal(prog, reparsed)) {
      add_mismatch(report, "print-parse-roundtrip",
                   "parse(print(p)) is not structurally equal to p;"
                   " reparsed form:\n" + ir::to_code_string(reparsed));
    }
  } catch (const Error& e) {
    add_mismatch(report, "print-parse-roundtrip",
                 std::string("printed program does not parse: ") + e.what());
  }
}

void check_walker(OracleReport& report, const trace::CompiledProgram& cp) {
  std::vector<trace::Access> ref;
  ref.reserve(static_cast<std::size_t>(cp.total_accesses()));
  cp.walk([&](const trace::Access& a) { ref.push_back(a); });
  if (ref.size() != cp.total_accesses()) {
    std::ostringstream os;
    os << "walk produced " << ref.size() << " accesses, total_accesses() = "
       << cp.total_accesses();
    add_mismatch(report, "walker", os.str());
  }
  // Batch boundaries must not change the delivered sequence: batch=1
  // flushes inside every flattened leaf loop, batch=3 lands mid-statement.
  for (const std::size_t batch : {std::size_t{1}, std::size_t{3}}) {
    std::size_t pos = 0;
    bool diverged = false;
    cp.walk_batched(
        [&](const trace::Access* a, std::size_t n) {
          for (std::size_t i = 0; i < n && !diverged; ++i, ++pos) {
            if (pos >= ref.size() || a[i].addr != ref[pos].addr ||
                a[i].mode != ref[pos].mode || a[i].site != ref[pos].site) {
              std::ostringstream os;
              os << "batch=" << batch << " diverges from walk() at access "
                 << pos;
              add_mismatch(report, "walker", os.str());
              diverged = true;
            }
          }
        },
        batch);
    if (!diverged && pos != ref.size()) {
      std::ostringstream os;
      os << "batch=" << batch << " produced " << pos << " accesses, walk() "
         << ref.size();
      add_mismatch(report, "walker", os.str());
    }
  }
  // The run-compressed trace, decompressed iteration-major, must reproduce
  // walk() access for access; every group must also satisfy the contract
  // the bulk engines rely on (uniform count, bounded width when count > 1).
  std::size_t pos = 0;
  bool diverged = false;
  cp.walk_runs([&](const trace::Run* g, std::size_t nrefs) {
    if (diverged) return;
    const std::uint64_t count = nrefs > 0 ? g[0].count : 0;
    if (nrefs == 0 || count == 0 ||
        (count > 1 && nrefs > trace::kMaxLeafRefs)) {
      std::ostringstream os;
      os << "walk_runs group violates contract: nrefs=" << nrefs
         << " count=" << count;
      add_mismatch(report, "walker-runs", os.str());
      diverged = true;
      return;
    }
    for (std::size_t r = 1; r < nrefs; ++r) {
      if (g[r].count != count) {
        std::ostringstream os;
        os << "walk_runs group with non-uniform counts: " << g[r].count
           << " vs " << count;
        add_mismatch(report, "walker-runs", os.str());
        diverged = true;
        return;
      }
    }
    for (std::uint64_t v = 0; v < count && !diverged; ++v) {
      for (std::size_t r = 0; r < nrefs; ++r, ++pos) {
        const std::uint64_t addr = g[r].at(v);
        if (pos >= ref.size() || addr != ref[pos].addr ||
            g[r].mode != ref[pos].mode || g[r].site != ref[pos].site) {
          std::ostringstream os;
          os << "walk_runs decompression diverges from walk() at access "
             << pos;
          add_mismatch(report, "walker-runs", os.str());
          diverged = true;
          break;
        }
      }
    }
  });
  if (!diverged && pos != ref.size()) {
    std::ostringstream os;
    os << "walk_runs produced " << pos << " accesses, walk() " << ref.size();
    add_mismatch(report, "walker-runs", os.str());
  }
}

void check_model(OracleReport& report, const ir::Program& prog,
                 const sym::Env& env, const trace::CompiledProgram& cp,
                 const OracleOptions& opts) {
  const auto an = model::analyze(prog);
  const auto prof = cachesim::profile_stack_distances(cp);
  for (const std::int64_t cap : opts.capacities) {
    const auto pred = model::predict_misses(an, env, cap);
    if (static_cast<std::uint64_t>(pred.misses) != prof.misses(cap)) {
      std::ostringstream os;
      os << "cap=" << cap << ": model predicts " << pred.misses
         << " misses, profiler counts " << prof.misses(cap);
      add_mismatch(report, "model-vs-profile", os.str());
    }
  }
  // Per-site agreement against the arena LRU cache at one mid capacity.
  const std::int64_t cap = opts.per_site_capacity;
  const auto sim = cachesim::simulate_lru(cp, cap);
  const auto pred = model::predict_misses(an, env, cap);
  SimResult pred_as_sim;
  pred_as_sim.accesses = static_cast<std::uint64_t>(pred.total_accesses);
  pred_as_sim.misses = static_cast<std::uint64_t>(pred.misses);
  pred_as_sim.misses_by_site.reserve(pred.misses_by_site.size());
  for (const auto m : pred.misses_by_site) {
    pred_as_sim.misses_by_site.push_back(static_cast<std::uint64_t>(m));
  }
  compare_results(report, "model-vs-lru-per-site",
                  "cap=" + std::to_string(cap), pred_as_sim, sim);
}

void check_profile(OracleReport& report, const trace::CompiledProgram& cp,
                   const OracleOptions& opts) {
  for (const std::int64_t line : opts.line_sizes) {
    const auto prof = cachesim::profile_stack_distances(
        cp, line, trace::TraceMode::kRuns);
    const auto prof_b = cachesim::profile_stack_distances(
        cp, line, trace::TraceMode::kBatched);
    // The run-fed profiler must reproduce the per-access profile exactly —
    // histograms, cold counts, and the per-site breakdowns.
    if (prof.accesses != prof_b.accesses || prof.cold != prof_b.cold ||
        prof.histogram != prof_b.histogram ||
        prof.cold_by_site != prof_b.cold_by_site ||
        prof.histogram_by_site != prof_b.histogram_by_site) {
      std::ostringstream os;
      os << "line=" << line
         << ": run-fed profile differs from per-access profile";
      add_mismatch(report, "profile-runs-vs-batched", os.str());
    }
    for (const std::int64_t cl : opts.capacity_lines) {
      const std::int64_t cap = cl * line;
      std::ostringstream where;
      where << "cap=" << cap << " line=" << line;
      compare_results(report, "profile-vs-lru-lines", where.str(),
                      prof.result(cap),
                      cachesim::simulate_lru_lines(cp, cap, line));
    }
  }
}

void check_sweep(OracleReport& report, const trace::CompiledProgram& cp,
                 const OracleOptions& opts) {
  // One mixed config list: fully-associative entries per line size plus
  // set-associative entries under both policies. simulate_sweep must be
  // bit-identical to the per-configuration reference simulators.
  std::vector<cachesim::SweepConfig> configs;
  for (const std::int64_t line : opts.line_sizes) {
    for (const std::int64_t cl : opts.capacity_lines) {
      configs.push_back({cl * line, line, 0, cachesim::Replacement::kLru});
      for (const int ways : opts.ways_ladder) {
        if (cl % ways != 0) continue;
        configs.push_back({cl * line, line, ways,
                           cachesim::Replacement::kLru});
        configs.push_back({cl * line, line, ways,
                           cachesim::Replacement::kFifo});
      }
    }
  }
  const auto results = cachesim::simulate_sweep(cp, configs, nullptr,
                                                trace::TraceMode::kRuns);
  const auto results_b = cachesim::simulate_sweep(cp, configs, nullptr,
                                                  trace::TraceMode::kBatched);
  const auto many = cachesim::simulate_many(cp, configs, nullptr,
                                            trace::TraceMode::kRuns);
  const auto many_b = cachesim::simulate_many(cp, configs, nullptr,
                                              trace::TraceMode::kBatched);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto& c = configs[i];
    const SimResult want =
        c.ways == 0
            ? cachesim::simulate_lru_lines(cp, c.capacity_elems,
                                           c.line_elems)
            : cachesim::simulate_set_assoc(cp, c.capacity_elems, c.ways,
                                           c.line_elems, c.policy);
    std::ostringstream where;
    where << "cap=" << c.capacity_elems << " line=" << c.line_elems
          << " ways=" << c.ways
          << (c.policy == cachesim::Replacement::kFifo ? " fifo" : " lru");
    compare_results(report, "sweep-vs-reference", where.str(), results[i],
                    want);
    compare_results(report, "sweep-batched-vs-reference", where.str(),
                    results_b[i], want);
    compare_results(report, "many-vs-reference", where.str(), many[i],
                    want);
    compare_results(report, "many-batched-vs-reference", where.str(),
                    many_b[i], want);
  }
}

void check_set_assoc_edges(OracleReport& report,
                           const trace::CompiledProgram& cp,
                           const OracleOptions& opts) {
  for (const std::int64_t line : opts.line_sizes) {
    for (const std::int64_t cl : opts.capacity_lines) {
      const std::int64_t cap = cl * line;
      std::ostringstream base;
      base << "cap=" << cap << " line=" << line;
      // Associativity == num_lines collapses to one set: the cache is
      // fully associative and must match the LruCache-based simulator.
      compare_results(
          report, "set-assoc-fully-assoc-edge", base.str(),
          cachesim::simulate_set_assoc(cp, cap, static_cast<int>(cl), line,
                                       cachesim::Replacement::kLru),
          cachesim::simulate_lru_lines(cp, cap, line));
      // Direct-mapped (1-way) sets hold a single line, so the replacement
      // policy cannot matter: LRU and FIFO must agree access for access.
      compare_results(
          report, "set-assoc-direct-mapped-edge", base.str() + " ways=1",
          cachesim::simulate_set_assoc(cp, cap, 1, line,
                                       cachesim::Replacement::kFifo),
          cachesim::simulate_set_assoc(cp, cap, 1, line,
                                       cachesim::Replacement::kLru));
    }
  }
}

}  // namespace

OracleReport check_program(const ir::Program& prog, const sym::Env& env,
                           const OracleOptions& opts) {
  OracleReport report;
  if (opts.check_roundtrip) check_roundtrip(report, prog);

  trace::CompiledProgram cp(prog, env);
  report.accesses = cp.total_accesses();
  if (report.accesses > opts.max_trace_accesses) {
    report.skipped = true;
    return report;
  }
  if (opts.check_walker) check_walker(report, cp);
  if (opts.check_model) check_model(report, prog, env, cp, opts);
  if (opts.check_profile) check_profile(report, cp, opts);
  if (opts.check_sweep) check_sweep(report, cp, opts);
  if (opts.check_set_assoc) check_set_assoc_edges(report, cp, opts);
  return report;
}

namespace {

std::string render(const ir::Program& prog, const sym::Env& env,
                   const OracleReport& report, const std::string& origin) {
  std::ostringstream os;
  os << "differential oracle failure (" << report.mismatches.size()
     << " mismatch" << (report.mismatches.size() == 1 ? "" : "es") << ")\n";
  if (!origin.empty()) os << origin << "\n";
  os << "env:";
  for (const auto& [name, value] : env) os << " " << name << "=" << value;
  os << "\nprogram (replayable through ir::parse_program):\n"
     << ir::to_code_string(prog);
  for (const auto& m : report.mismatches) {
    os << "[" << m.oracle << "] " << m.detail << "\n";
  }
  return os.str();
}

}  // namespace

std::string describe_failure(const GeneratedProgram& gp,
                             const OracleReport& report) {
  std::ostringstream origin;
  origin << "seed " << gp.seed << " index " << gp.index
         << " (replay: ProgramGenerator(" << gp.seed << ").generate() x"
         << (gp.index + 1) << ", or `sdlo fuzz --seed " << gp.seed << "`)";
  return render(gp.prog, gp.env, report, origin.str());
}

std::string describe_failure(const ir::Program& prog, const sym::Env& env,
                             const OracleReport& report) {
  return render(prog, env, report, "");
}

}  // namespace sdlo::fuzz
