#include "fuzz/oracles.hpp"

#include <array>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>

#if !defined(_WIN32)
#include <unistd.h>
#endif
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "analysis/advisor.hpp"
#include "analysis/dependence.hpp"
#include "analysis/lint.hpp"
#include "analysis/misses_driver.hpp"
#include "analysis/parallel_safety.hpp"
#include "analysis/sweep_driver.hpp"
#include "cachesim/parallel_stack.hpp"
#include "cachesim/sim.hpp"
#include "cachesim/sweep.hpp"
#include "trace/spool.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "model/analyzer.hpp"
#include "model/symbolic_sweep.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"
#include "support/failpoints.hpp"
#include "trace/walker.hpp"

namespace sdlo::fuzz {

namespace {

using cachesim::SimResult;

void add_mismatch(OracleReport& report, const std::string& oracle,
                  const std::string& detail) {
  report.mismatches.push_back(Mismatch{oracle, detail});
}

/// Byte-for-byte file equality (both must exist and match exactly).
bool files_equal(const std::string& a, const std::string& b) {
  std::ifstream fa(a, std::ios::binary);
  std::ifstream fb(b, std::ios::binary);
  if (!fa || !fb) return false;
  const std::string da((std::istreambuf_iterator<char>(fa)),
                       std::istreambuf_iterator<char>());
  const std::string db((std::istreambuf_iterator<char>(fb)),
                       std::istreambuf_iterator<char>());
  return da == db;
}

/// Compares two SimResults field by field; any difference is one mismatch
/// naming the first differing field.
void compare_results(OracleReport& report, const std::string& oracle,
                     const std::string& where, const SimResult& got,
                     const SimResult& want) {
  std::ostringstream os;
  os << where << ": ";
  if (got.accesses != want.accesses) {
    os << "accesses " << got.accesses << " != " << want.accesses;
  } else if (got.misses != want.misses) {
    os << "misses " << got.misses << " != " << want.misses;
  } else if (got.misses_by_site != want.misses_by_site) {
    std::size_t s = 0;
    while (s < got.misses_by_site.size() &&
           s < want.misses_by_site.size() &&
           got.misses_by_site[s] == want.misses_by_site[s]) {
      ++s;
    }
    os << "misses_by_site[" << s << "] ";
    if (s < got.misses_by_site.size()) os << got.misses_by_site[s];
    else os << "<absent>";
    os << " != ";
    if (s < want.misses_by_site.size()) os << want.misses_by_site[s];
    else os << "<absent>";
  } else {
    return;  // equal
  }
  add_mismatch(report, oracle, os.str());
}

void check_roundtrip(OracleReport& report, const ir::Program& prog) {
  const std::string text = ir::to_code_string(prog);
  try {
    const ir::Program reparsed = ir::parse_program(text);
    if (!ir::structurally_equal(prog, reparsed)) {
      add_mismatch(report, "print-parse-roundtrip",
                   "parse(print(p)) is not structurally equal to p;"
                   " reparsed form:\n" + ir::to_code_string(reparsed));
    }
  } catch (const Error& e) {
    add_mismatch(report, "print-parse-roundtrip",
                 std::string("printed program does not parse: ") + e.what());
  }
}

void check_walker(OracleReport& report, const trace::CompiledProgram& cp) {
  std::vector<trace::Access> ref;
  ref.reserve(static_cast<std::size_t>(cp.total_accesses()));
  cp.walk([&](const trace::Access& a) { ref.push_back(a); });
  if (ref.size() != cp.total_accesses()) {
    std::ostringstream os;
    os << "walk produced " << ref.size() << " accesses, total_accesses() = "
       << cp.total_accesses();
    add_mismatch(report, "walker", os.str());
  }
  // Batch boundaries must not change the delivered sequence: batch=1
  // flushes inside every flattened leaf loop, batch=3 lands mid-statement.
  for (const std::size_t batch : {std::size_t{1}, std::size_t{3}}) {
    std::size_t pos = 0;
    bool diverged = false;
    cp.walk_batched(
        [&](const trace::Access* a, std::size_t n) {
          for (std::size_t i = 0; i < n && !diverged; ++i, ++pos) {
            if (pos >= ref.size() || a[i].addr != ref[pos].addr ||
                a[i].mode != ref[pos].mode || a[i].site != ref[pos].site) {
              std::ostringstream os;
              os << "batch=" << batch << " diverges from walk() at access "
                 << pos;
              add_mismatch(report, "walker", os.str());
              diverged = true;
            }
          }
        },
        batch);
    if (!diverged && pos != ref.size()) {
      std::ostringstream os;
      os << "batch=" << batch << " produced " << pos << " accesses, walk() "
         << ref.size();
      add_mismatch(report, "walker", os.str());
    }
  }
  // The run-compressed trace, decompressed iteration-major, must reproduce
  // walk() access for access; every group must also satisfy the contract
  // the bulk engines rely on (uniform count, bounded width when count > 1).
  std::size_t pos = 0;
  bool diverged = false;
  cp.walk_runs([&](const trace::Run* g, std::size_t nrefs) {
    if (diverged) return;
    const std::uint64_t count = nrefs > 0 ? g[0].count : 0;
    if (nrefs == 0 || count == 0 ||
        (count > 1 && nrefs > trace::kMaxLeafRefs)) {
      std::ostringstream os;
      os << "walk_runs group violates contract: nrefs=" << nrefs
         << " count=" << count;
      add_mismatch(report, "walker-runs", os.str());
      diverged = true;
      return;
    }
    for (std::size_t r = 1; r < nrefs; ++r) {
      if (g[r].count != count) {
        std::ostringstream os;
        os << "walk_runs group with non-uniform counts: " << g[r].count
           << " vs " << count;
        add_mismatch(report, "walker-runs", os.str());
        diverged = true;
        return;
      }
    }
    for (std::uint64_t v = 0; v < count && !diverged; ++v) {
      for (std::size_t r = 0; r < nrefs; ++r, ++pos) {
        const std::uint64_t addr = g[r].at(v);
        if (pos >= ref.size() || addr != ref[pos].addr ||
            g[r].mode != ref[pos].mode || g[r].site != ref[pos].site) {
          std::ostringstream os;
          os << "walk_runs decompression diverges from walk() at access "
             << pos;
          add_mismatch(report, "walker-runs", os.str());
          diverged = true;
          break;
        }
      }
    }
  });
  if (!diverged && pos != ref.size()) {
    std::ostringstream os;
    os << "walk_runs produced " << pos << " accesses, walk() " << ref.size();
    add_mismatch(report, "walker-runs", os.str());
  }
}

void check_model(OracleReport& report, const ir::Program& prog,
                 const sym::Env& env, const trace::CompiledProgram& cp,
                 const OracleOptions& opts) {
  const auto an = model::analyze(prog);
  const auto prof = cachesim::profile_stack_distances(cp);
  for (const std::int64_t cap : opts.capacities) {
    const auto pred = model::predict_misses(an, env, cap);
    if (static_cast<std::uint64_t>(pred.misses) != prof.misses(cap)) {
      std::ostringstream os;
      os << "cap=" << cap << ": model predicts " << pred.misses
         << " misses, profiler counts " << prof.misses(cap);
      add_mismatch(report, "model-vs-profile", os.str());
    }
  }
  // Per-site agreement against the arena LRU cache at one mid capacity.
  const std::int64_t cap = opts.per_site_capacity;
  const auto sim = cachesim::simulate_lru(cp, cap);
  const auto pred = model::predict_misses(an, env, cap);
  SimResult pred_as_sim;
  pred_as_sim.accesses = static_cast<std::uint64_t>(pred.total_accesses);
  pred_as_sim.misses = static_cast<std::uint64_t>(pred.misses);
  pred_as_sim.misses_by_site.reserve(pred.misses_by_site.size());
  for (const auto m : pred.misses_by_site) {
    pred_as_sim.misses_by_site.push_back(static_cast<std::uint64_t>(m));
  }
  compare_results(report, "model-vs-lru-per-site",
                  "cap=" + std::to_string(cap), pred_as_sim, sim);
}

void check_symbolic_sweep(OracleReport& report, const ir::Program& prog,
                          const sym::Env& env,
                          const trace::CompiledProgram& cp,
                          const OracleOptions& opts) {
  const auto an = model::analyze(prog);
  const auto sweep = model::symbolic_sweep(an, env);
  if (sweep.confidence != model::Confidence::kExact) {
    // Not model-exact: the sweep driver falls back to simulation, so there
    // is no analytic curve to enroll. (The numeric-prediction oracle still
    // covers the interpolated paths.)
    return;
  }
  // The analytic stack-distance histogram must be bit-identical to the
  // trace profiler's — global and per-site, cold counts included.
  const auto prof = cachesim::profile_stack_distances(cp);
  const auto got = sweep.profile();
  if (got.accesses != prof.accesses || got.cold != prof.cold ||
      got.histogram != prof.histogram ||
      got.cold_by_site != prof.cold_by_site ||
      got.histogram_by_site != prof.histogram_by_site) {
    add_mismatch(report, "symbolic-sweep-vs-profile",
                 "analytic stack-distance histogram differs from the trace "
                 "profile (cold/global/per-site)");
  }
  // And the evaluated curve must be bit-identical to simulate_sweep at the
  // capacity ladder plus every crossing point and both its neighbors.
  std::set<std::int64_t> caps(opts.capacities.begin(),
                              opts.capacities.end());
  for (const std::int64_t d : sweep.crossing_points()) {
    if (d > 1) caps.insert(d - 1);
    caps.insert(d);
    caps.insert(d + 1);
  }
  const std::vector<std::int64_t> cap_list(caps.begin(), caps.end());
  // The marker-stack engine takes at most 254 capacities per call.
  for (std::size_t base = 0; base < cap_list.size(); base += 200) {
    const std::size_t n =
        std::min<std::size_t>(200, cap_list.size() - base);
    std::vector<cachesim::SweepConfig> configs;
    configs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      configs.push_back(
          {cap_list[base + i], 1, 0, cachesim::Replacement::kLru});
    }
    const auto swept = cachesim::simulate_sweep(cp, configs);
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t cap = cap_list[base + i];
      compare_results(report, "symbolic-sweep-vs-sweep",
                      "cap=" + std::to_string(cap), sweep.result_at(cap),
                      swept[i]);
    }
  }
}

void check_profile(OracleReport& report, const trace::CompiledProgram& cp,
                   const OracleOptions& opts) {
  for (const std::int64_t line : opts.line_sizes) {
    const auto prof = cachesim::profile_stack_distances(
        cp, line, trace::TraceMode::kRuns);
    const auto prof_b = cachesim::profile_stack_distances(
        cp, line, trace::TraceMode::kBatched);
    // The run-fed profiler must reproduce the per-access profile exactly —
    // histograms, cold counts, and the per-site breakdowns.
    if (prof.accesses != prof_b.accesses || prof.cold != prof_b.cold ||
        prof.histogram != prof_b.histogram ||
        prof.cold_by_site != prof_b.cold_by_site ||
        prof.histogram_by_site != prof_b.histogram_by_site) {
      std::ostringstream os;
      os << "line=" << line
         << ": run-fed profile differs from per-access profile";
      add_mismatch(report, "profile-runs-vs-batched", os.str());
    }
    for (const std::int64_t cl : opts.capacity_lines) {
      const std::int64_t cap = cl * line;
      std::ostringstream where;
      where << "cap=" << cap << " line=" << line;
      compare_results(report, "profile-vs-lru-lines", where.str(),
                      prof.result(cap),
                      cachesim::simulate_lru_lines(cp, cap, line));
    }
  }
}

void check_sweep(OracleReport& report, const trace::CompiledProgram& cp,
                 const OracleOptions& opts) {
  // One mixed config list: fully-associative entries per line size plus
  // set-associative entries under both policies. simulate_sweep must be
  // bit-identical to the per-configuration reference simulators.
  std::vector<cachesim::SweepConfig> configs;
  for (const std::int64_t line : opts.line_sizes) {
    for (const std::int64_t cl : opts.capacity_lines) {
      configs.push_back({cl * line, line, 0, cachesim::Replacement::kLru});
      for (const int ways : opts.ways_ladder) {
        if (cl % ways != 0) continue;
        configs.push_back({cl * line, line, ways,
                           cachesim::Replacement::kLru});
        configs.push_back({cl * line, line, ways,
                           cachesim::Replacement::kFifo});
      }
    }
  }
  const auto results = cachesim::simulate_sweep(cp, configs, nullptr,
                                                trace::TraceMode::kRuns);
  const auto results_b = cachesim::simulate_sweep(cp, configs, nullptr,
                                                  trace::TraceMode::kBatched);
  const auto many = cachesim::simulate_many(cp, configs, nullptr,
                                            trace::TraceMode::kRuns);
  const auto many_b = cachesim::simulate_many(cp, configs, nullptr,
                                              trace::TraceMode::kBatched);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto& c = configs[i];
    const SimResult want =
        c.ways == 0
            ? cachesim::simulate_lru_lines(cp, c.capacity_elems,
                                           c.line_elems)
            : cachesim::simulate_set_assoc(cp, c.capacity_elems, c.ways,
                                           c.line_elems, c.policy);
    std::ostringstream where;
    where << "cap=" << c.capacity_elems << " line=" << c.line_elems
          << " ways=" << c.ways
          << (c.policy == cachesim::Replacement::kFifo ? " fifo" : " lru");
    compare_results(report, "sweep-vs-reference", where.str(), results[i],
                    want);
    compare_results(report, "sweep-batched-vs-reference", where.str(),
                    results_b[i], want);
    compare_results(report, "many-vs-reference", where.str(), many[i],
                    want);
    compare_results(report, "many-batched-vs-reference", where.str(),
                    many_b[i], want);
  }
}

// Partitioned / out-of-core oracle: the time-partitioned parallel sweep
// (whose hole-merge pass reconstructs cross-chunk reuse depths), the spool
// file round trip and the materialized RunTrace must each reproduce the
// sequential simulate_sweep bit for bit — misses_by_site included — at
// every chunk count tried. Chunk counts are chosen to cover single-group
// chunks on small traces (the count is clamped to the group count).
void check_partitioned_engines(OracleReport& report,
                               const trace::CompiledProgram& cp,
                               const OracleOptions& opts) {
  std::vector<cachesim::SweepConfig> configs;
  for (const std::int64_t line : opts.line_sizes) {
    for (const std::int64_t cl : opts.capacity_lines) {
      configs.push_back({cl * line, line, 0, cachesim::Replacement::kLru});
    }
  }
  // One set-associative entry exercises the shared-walk delegation inside
  // the partitioned driver.
  configs.push_back({4 * opts.line_sizes.front(), opts.line_sizes.front(),
                     2, cachesim::Replacement::kLru});
  const auto want = cachesim::simulate_sweep(cp, configs);

  const auto compare_all = [&](const std::string& oracle,
                               const std::vector<SimResult>& got,
                               const std::string& suffix) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      std::ostringstream where;
      where << "cap=" << configs[i].capacity_elems
            << " line=" << configs[i].line_elems
            << " ways=" << configs[i].ways << suffix;
      compare_results(report, oracle, where.str(), got[i], want[i]);
    }
  };

  for (const int chunks : {2, 5, 17}) {
    cachesim::PartitionOptions popt;
    popt.chunks = chunks;
    compare_all("partitioned-vs-sweep",
                cachesim::simulate_sweep_partitioned(cp, configs, nullptr,
                                                     popt),
                " chunks=" + std::to_string(chunks));
  }

  // The name must be unique across *processes* too: ctest runs several
  // instances of this battery concurrently from one temp directory, and a
  // collision lets one process rename or remove a spool another process is
  // mid-read on.
  static std::atomic<std::uint64_t> spool_seq{0};
#if defined(_WIN32)
  const unsigned long pid = 0;
#else
  const auto pid = static_cast<unsigned long>(::getpid());
#endif
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("sdlo_fuzz_spool_" + std::to_string(pid) + "_" +
        std::to_string(spool_seq.fetch_add(1, std::memory_order_relaxed)) +
        ".spl"))
          .string();
  const std::string path_v1 = path + ".v1";
  const std::string path_tee = path + ".tee";
  try {
    trace::spool_program(path, cp);
    const trace::SpooledTrace spool(path);
    compare_all("spooled-vs-sweep", cachesim::simulate_sweep(spool, configs),
                "");
    cachesim::PartitionOptions popt;
    popt.chunks = 3;
    compare_all("spooled-partitioned-vs-sweep",
                cachesim::simulate_sweep_partitioned(spool, configs,
                                                     nullptr, popt),
                " chunks=3");
    const trace::RunTrace rt = trace::RunTrace::materialize(cp);
    compare_all("run-trace-vs-sweep", cachesim::simulate_sweep(rt, configs),
                "");

    // The legacy container: a v1 spool of the same trace must decode to
    // the same stream (group/access shape) and the same miss counts as the
    // delta-encoded v2 default.
    trace::spool_program(path_v1, cp, 1);
    const trace::SpooledTrace spool_v1(path_v1);
    if (spool_v1.group_count() != spool.group_count() ||
        spool_v1.total_accesses() != spool.total_accesses()) {
      std::ostringstream os;
      os << "v1 shape " << spool_v1.group_count() << "/"
         << spool_v1.total_accesses() << " != v2 shape "
         << spool.group_count() << "/" << spool.total_accesses();
      add_mismatch(report, "spool-v1-vs-v2", os.str());
    }
    compare_all("spool-v1-vs-sweep",
                cachesim::simulate_sweep(spool_v1, configs), " version=1");

    // The pipelined driver: one generation pass feeding every engine while
    // teeing the spool must be bit-identical to the sequential sweep, and
    // the teed file must be byte-identical to the one spool_program wrote.
    trace::SpoolWriter tee(path_tee);
    cachesim::StreamOptions sopt;
    sopt.partition.chunks = 3;
    sopt.tee = &tee;
    compare_all("streamed-vs-sweep",
                cachesim::simulate_sweep_streamed(cp, configs, nullptr,
                                                  sopt),
                " chunks=3 tee");
    tee.finish(cp.num_sites(), cp.address_space_size());
    if (!files_equal(path_tee, path)) {
      add_mismatch(report, "streamed-tee-bytes",
                   "teed spool differs from spool_program output");
    }
  } catch (const Error& e) {
    add_mismatch(report, "spooled-vs-sweep",
                 std::string("spool round trip failed: ") + e.what());
  }
  std::remove(path.c_str());
  std::remove(path_v1.c_str());
  std::remove(path_tee.c_str());
}

void check_set_assoc_edges(OracleReport& report,
                           const trace::CompiledProgram& cp,
                           const OracleOptions& opts) {
  for (const std::int64_t line : opts.line_sizes) {
    for (const std::int64_t cl : opts.capacity_lines) {
      const std::int64_t cap = cl * line;
      std::ostringstream base;
      base << "cap=" << cap << " line=" << line;
      // Associativity == num_lines collapses to one set: the cache is
      // fully associative and must match the LruCache-based simulator.
      compare_results(
          report, "set-assoc-fully-assoc-edge", base.str(),
          cachesim::simulate_set_assoc(cp, cap, static_cast<int>(cl), line,
                                       cachesim::Replacement::kLru),
          cachesim::simulate_lru_lines(cp, cap, line));
      // Direct-mapped (1-way) sets hold a single line, so the replacement
      // policy cannot matter: LRU and FIFO must agree access for access.
      compare_results(
          report, "set-assoc-direct-mapped-edge", base.str() + " ways=1",
          cachesim::simulate_set_assoc(cp, cap, 1, line,
                                       cachesim::Replacement::kFifo),
          cachesim::simulate_set_assoc(cp, cap, 1, line,
                                       cachesim::Replacement::kLru));
    }
  }
}

// Budget-degradation oracle: a zero-byte memory budget denies every dense
// address-table reservation, forcing the sweep engine and the profiler
// onto their hashed fallbacks. Degradation must be invisible in the
// results: bit-identical counts, misses_by_site included, and no spurious
// truncation (no deadline is set).
void check_budgeted_degradation(OracleReport& report,
                                const trace::CompiledProgram& cp,
                                const OracleOptions& opts) {
  std::vector<cachesim::SweepConfig> configs;
  for (const std::int64_t line : opts.line_sizes) {
    for (const std::int64_t cl : opts.capacity_lines) {
      configs.push_back({cl * line, line, 0, cachesim::Replacement::kLru});
    }
  }
  const auto dense = cachesim::simulate_sweep(cp, configs, nullptr,
                                              trace::TraceMode::kRuns);
  MemoryBudget no_memory(0);
  Governor gov;
  gov.memory = &no_memory;
  const auto hashed = cachesim::simulate_sweep(
      cp, configs, nullptr, trace::TraceMode::kRuns, &gov);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    std::ostringstream where;
    where << "cap=" << configs[i].capacity_elems
          << " line=" << configs[i].line_elems;
    compare_results(report, "budgeted-hashed-vs-dense", where.str(),
                    hashed[i], dense[i]);
    if (hashed[i].completeness != Completeness::kComplete) {
      add_mismatch(report, "budgeted-hashed-vs-dense",
                   where.str() + ": memory-budgeted run reported truncation"
                                 " without a deadline");
    }
  }
  // The profiler's hashed last-access table must match the dense one too.
  for (const std::int64_t line : opts.line_sizes) {
    const auto d = cachesim::profile_stack_distances(
        cp, line, trace::TraceMode::kRuns);
    const auto h = cachesim::profile_stack_distances(
        cp, line, trace::TraceMode::kRuns, &gov);
    if (d.accesses != h.accesses || d.cold != h.cold ||
        d.histogram != h.histogram ||
        d.cold_by_site != h.cold_by_site ||
        d.histogram_by_site != h.histogram_by_site ||
        h.completeness != Completeness::kComplete) {
      std::ostringstream os;
      os << "line=" << line
         << ": memory-budgeted (hashed) profile differs from dense profile";
      add_mismatch(report, "budgeted-profile-vs-dense", os.str());
    }
  }
}

// Every generated program is in the constrained class by construction, so
// the lint pipeline must report it well formed: any error-severity
// diagnostic is a verifier (or generator) bug.
void check_lint_gate(OracleReport& report, const ir::Program& prog,
                     const sym::Env& env, const OracleOptions& opts) {
  analysis::LintOptions lo;
  lo.env = env;
  lo.capacity = opts.per_site_capacity;
  lo.line_elems = opts.line_sizes.empty() ? 0 : opts.line_sizes.back();
  const analysis::LintReport rep = analysis::lint_program(prog, nullptr, lo);
  if (rep.ok()) return;
  std::ostringstream os;
  os << "generated program fails the well-formedness lint:";
  for (const auto& d : rep.diagnostics) {
    if (d.severity == analysis::Severity::kError) {
      os << "\n  " << analysis::to_text(d);
    }
  }
  add_mismatch(report, "lint-gate", os.str());
}

// ---------------------------------------------------------------------------
// Parallel-safety oracle: brute-force verification of DOALL claims.
// ---------------------------------------------------------------------------

// Per-(outer-context, array, element) record of which iterations of the
// candidate loop touched it and how.
struct ElemTouches {
  std::vector<std::int64_t> writers;          ///< iterations writing it
  std::vector<std::int64_t> readers;          ///< iterations reading it
  std::vector<std::int64_t> first_touch_read; ///< iterations whose first
                                              ///< access to it is a read
};

struct SubtreeExec {
  const ir::Program& prog;
  const std::map<std::string, std::int64_t>& extents;
  std::map<std::string, std::int64_t> binding;
  std::int64_t iter = 0;  ///< current value of the candidate loop
  std::map<std::string, std::map<std::int64_t, ElemTouches>> touches;
  std::map<std::string, std::set<std::int64_t>> seen_this_iter;

  std::int64_t element_of(const ir::ArrayRef& ref) const {
    std::int64_t elem = 0;
    for (const auto& sub : ref.subscripts) {
      for (const auto& v : sub.vars) {
        elem = elem * extents.at(v) + binding.at(v);
      }
    }
    return elem;
  }

  void touch(const ir::ArrayRef& ref) {
    const std::int64_t elem = element_of(ref);
    ElemTouches& t = touches[ref.array][elem];
    if (seen_this_iter[ref.array].insert(elem).second &&
        ref.mode == ir::AccessMode::kRead) {
      t.first_touch_read.push_back(iter);
    }
    auto& list =
        ref.mode == ir::AccessMode::kWrite ? t.writers : t.readers;
    if (list.empty() || list.back() != iter) list.push_back(iter);
  }

  void run(ir::NodeId n) {
    if (prog.is_statement(n)) {
      for (const auto& ref : prog.statement(n).accesses) touch(ref);
      return;
    }
    run_loops(n, 0);
  }

  // Enumerates the band's loops not already bound, then the children.
  void run_loops(ir::NodeId band, std::size_t k) {
    const auto& loops = prog.band_loops(band);
    if (k == loops.size()) {
      for (ir::NodeId c : prog.children(band)) run(c);
      return;
    }
    const std::string& var = loops[k].var;
    if (binding.count(var) != 0) {  // outer context or the candidate loop
      run_loops(band, k + 1);
      return;
    }
    for (std::int64_t v = 0; v < extents.at(var); ++v) {
      binding[var] = v;
      run_loops(band, k + 1);
    }
    binding.erase(var);
  }
};

// Per-candidate ceiling on brute-forced subtree trace slots.
constexpr std::uint64_t kParallelOracleBudget = 200'000;

// Cross-checks each claimed-DOALL-safe loop by executing its band subtree
// and testing element-wise disjointness; claimed-unsafe loops are excluded
// (the lint verdict gates which loops the parallel oracle exercises).
void check_parallel_claims(OracleReport& report, const ir::Program& prog,
                           const sym::Env& env) {
  const auto verdicts = analysis::analyze_parallel_safety(prog);
  std::map<std::string, std::int64_t> extents;
  for (const auto& var : prog.variables()) {
    extents[var] = sym::evaluate(prog.extent_of(var), env);
    if (extents[var] <= 0) return;  // degenerate space: nothing executes
  }

  for (const auto& lp : verdicts) {
    if (!lp.doall_safe) continue;  // unsafe loops: excluded from the oracle

    // Outer context: loops on the band's path before the candidate.
    std::vector<std::string> outer;
    for (const auto& pl : prog.path_loops(lp.band)) {
      if (pl.band == lp.band && pl.index_in_band == lp.index_in_band) break;
      outer.push_back(pl.var);
    }

    // Cost guard: across all outer contexts the brute force touches every
    // subtree trace slot exactly once; skip oversized candidates.
    std::uint64_t cost = 0;
    std::vector<ir::NodeId> pending{lp.band};
    while (!pending.empty()) {
      const ir::NodeId n = pending.back();
      pending.pop_back();
      if (!prog.is_statement(n)) {
        for (ir::NodeId c : prog.children(n)) pending.push_back(c);
        continue;
      }
      std::uint64_t instances = 1;
      for (const auto& pl : prog.path_loops(n)) {
        instances *= static_cast<std::uint64_t>(extents.at(pl.var));
      }
      cost += instances * prog.statement(n).accesses.size();
    }
    if (cost > kParallelOracleBudget) continue;

    const std::set<std::string> privatized(lp.privatized.begin(),
                                           lp.privatized.end());

    // Enumerate outer contexts with a mixed-radix counter.
    std::vector<std::int64_t> ov(outer.size(), 0);
    for (;;) {
      SubtreeExec exec{prog, extents, {}, 0, {}, {}};
      for (std::size_t i = 0; i < outer.size(); ++i) {
        exec.binding[outer[i]] = ov[i];
      }
      for (std::int64_t it = 0; it < extents.at(lp.var); ++it) {
        exec.iter = it;
        exec.binding[lp.var] = it;
        exec.seen_this_iter.clear();
        exec.run(lp.band);
      }
      for (const auto& [array, elems] : exec.touches) {
        const bool priv = privatized.count(array) != 0;
        for (const auto& [elem, t] : elems) {
          std::string why;
          if (priv) {
            // Privatization claims kill-first: every iteration touching an
            // element must write it before reading it.
            if (!t.first_touch_read.empty()) {
              why = "upward-exposed read in iteration " +
                    std::to_string(t.first_touch_read.front()) +
                    " of privatized array";
            }
          } else if (t.writers.size() > 1) {
            why = "written by iterations " +
                  std::to_string(t.writers[0]) + " and " +
                  std::to_string(t.writers[1]);
          } else if (t.writers.size() == 1) {
            for (const std::int64_t r : t.readers) {
              if (r != t.writers[0]) {
                why = "written by iteration " +
                      std::to_string(t.writers[0]) + ", read by iteration " +
                      std::to_string(r);
                break;
              }
            }
          }
          if (!why.empty()) {
            std::ostringstream os;
            os << "loop '" << lp.var << "' claimed DOALL-safe but " << array
               << "[" << elem << "] is " << why;
            add_mismatch(report, "parallel-safety", os.str());
            return;  // one counterexample per program suffices
          }
        }
      }
      // Advance the outer context.
      std::size_t k = 0;
      for (; k < ov.size(); ++k) {
        if (++ov[k] < extents.at(outer[k])) break;
        ov[k] = 0;
      }
      if (k == ov.size()) break;
    }
  }
}

// ---------------------------------------------------------------------------
// Dependence oracle: brute-force cross-check of reported direction vectors.
// ---------------------------------------------------------------------------

// Trace slots brute-forced per program, and element-history pairs compared;
// oversized programs are skipped (the analysis is exact regardless of size,
// the oracle just cannot afford the quadratic replay).
constexpr std::uint64_t kDependenceAccessBudget = 50'000;
constexpr std::uint64_t kDependencePairBudget = 2'000'000;

// One recorded access of the replay: which site executed, under which
// values of its enclosing loops (outermost first).
struct DepEvent {
  std::int32_t site = 0;
  ir::NodeId stmt = 0;
  ir::AccessMode mode = ir::AccessMode::kRead;
  std::vector<std::int64_t> vals;
};

// Replays the whole program in execution order, appending per-(array,
// element) access histories.
struct DepExec {
  const ir::Program& prog;
  const std::map<std::string, std::int64_t>& extents;
  const std::map<ir::NodeId, std::int32_t>& site_base;
  std::map<std::string, std::int64_t> binding;
  std::map<std::string, std::map<std::int64_t, std::vector<DepEvent>>> hist;
  std::uint64_t pairs = 0;  ///< incremental sum of history-pair counts

  std::int64_t element_of(const ir::ArrayRef& ref) const {
    std::int64_t elem = 0;
    for (const auto& sub : ref.subscripts)
      for (const auto& v : sub.vars)
        elem = elem * extents.at(v) + binding.at(v);
    return elem;
  }

  void run(ir::NodeId n) {
    if (prog.is_statement(n)) {
      const ir::Statement& stmt = prog.statement(n);
      std::vector<std::int64_t> vals;
      for (const auto& pl : prog.path_loops(n)) vals.push_back(binding.at(pl.var));
      for (int ai = 0; ai < static_cast<int>(stmt.accesses.size()); ++ai) {
        const ir::ArrayRef& ref = stmt.accesses[static_cast<std::size_t>(ai)];
        std::vector<DepEvent>& h = hist[ref.array][element_of(ref)];
        pairs += h.size();
        h.push_back({site_base.at(n) + ai, n, ref.mode, vals});
      }
      return;
    }
    run_loops(n, 0);
  }

  void run_loops(ir::NodeId band, std::size_t k) {
    const auto& loops = prog.band_loops(band);
    if (k == loops.size()) {
      for (ir::NodeId c : prog.children(band)) run(c);
      return;
    }
    const std::string& var = loops[k].var;
    for (std::int64_t v = 0; v < extents.at(var); ++v) {
      binding[var] = v;
      run_loops(band, k + 1);
    }
    binding.erase(var);
  }
};

int dep_kind_index(ir::AccessMode src, ir::AccessMode dst) {
  const bool sw = src == ir::AccessMode::kWrite;
  const bool dw = dst == ir::AccessMode::kWrite;
  if (sw && !dw) return 0;  // flow
  if (!sw && dw) return 1;  // anti
  if (sw && dw) return 2;   // output
  return -1;                // read-read: reuse, not dependence
}

void check_dependence_claims(OracleReport& report, const ir::Program& prog,
                             const sym::Env& env) {
  std::map<std::string, std::int64_t> extents;
  for (const auto& var : prog.variables()) {
    extents[var] = sym::evaluate(prog.extent_of(var), env);
    if (extents[var] <= 0) return;  // degenerate space: nothing executes
  }

  // Cost guard on the replay itself.
  std::uint64_t cost = 0;
  std::map<ir::NodeId, std::int32_t> site_base;
  std::int32_t next_site = 0;
  for (ir::NodeId sn : prog.statements_in_order()) {
    site_base[sn] = next_site;
    next_site += static_cast<std::int32_t>(prog.statement(sn).accesses.size());
    std::uint64_t instances = 1;
    for (const auto& pl : prog.path_loops(sn))
      instances *= static_cast<std::uint64_t>(extents.at(pl.var));
    cost += instances * prog.statement(sn).accesses.size();
  }
  if (cost > kDependenceAccessBudget) return;

  DepExec exec{prog, extents, site_base, {}, {}, 0};
  exec.run(ir::Program::kRoot);
  if (exec.pairs > kDependencePairBudget) return;

  // Common-loop prefix length per statement pair.
  std::map<std::pair<ir::NodeId, ir::NodeId>, std::size_t> common_len;
  for (ir::NodeId a : prog.statements_in_order()) {
    for (ir::NodeId b : prog.statements_in_order()) {
      const auto pa = prog.path_loops(a);
      const auto pb = prog.path_loops(b);
      std::size_t n = 0;
      while (n < pa.size() && n < pb.size() && pa[n].band == pb[n].band &&
             pa[n].index_in_band == pb[n].index_in_band)
        ++n;
      common_len[{a, b}] = n;
    }
  }

  // Observed set: every ordered same-element pair with at least one write.
  std::set<std::string> observed;
  for (const auto& [array, elems] : exec.hist) {
    (void)array;
    for (const auto& [elem, h] : elems) {
      (void)elem;
      for (std::size_t i = 0; i < h.size(); ++i) {
        for (std::size_t j = i + 1; j < h.size(); ++j) {
          const int kind = dep_kind_index(h[i].mode, h[j].mode);
          if (kind < 0) continue;
          std::string dirs;
          for (std::size_t t = 0; t < common_len.at({h[i].stmt, h[j].stmt});
               ++t) {
            dirs += h[j].vals[t] < h[i].vals[t]   ? '>'
                    : h[j].vals[t] > h[i].vals[t] ? '<'
                                                  : '=';
          }
          observed.insert(std::to_string(h[i].site) + ">" +
                          std::to_string(h[j].site) + "|" +
                          std::to_string(kind) + "|" + dirs);
        }
      }
    }
  }

  // Expected set: each reported dependence expanded over its '*' loops,
  // restricted to realizable vectors (lexicographically positive, or all
  // '=' for loop-independent records; '<'/'>' need extent >= 2).
  const analysis::DependenceAnalysis da = analysis::analyze_dependences(prog);
  std::set<std::string> expected;
  std::map<std::string, const analysis::Dependence*> owner;
  for (const analysis::Dependence& d : da.deps) {
    const std::int32_t src = site_base.at(d.src.stmt) + d.src.access;
    const std::int32_t dst = site_base.at(d.dst.stmt) + d.dst.access;
    const int kind = d.kind == analysis::DepKind::kFlow   ? 0
                     : d.kind == analysis::DepKind::kAnti ? 1
                                                          : 2;
    std::string dirs(d.loops.size(), '=');
    const std::function<void(std::size_t)> expand = [&](std::size_t t) {
      if (t == d.loops.size()) {
        const std::size_t first = dirs.find_first_not_of('=');
        if (first == std::string::npos ? !d.loop_independent
                                       : dirs[first] != '<')
          return;
        const std::string key = std::to_string(src) + ">" +
                                std::to_string(dst) + "|" +
                                std::to_string(kind) + "|" + dirs;
        expected.insert(key);
        owner.emplace(key, &d);
        return;
      }
      if (d.loops[t].dir == analysis::Direction::kEq) {
        expand(t + 1);
        return;
      }
      for (char c : {'<', '=', '>'}) {
        if (c != '=' && extents.at(d.loops[t].var) < 2) continue;
        dirs[t] = c;
        expand(t + 1);
        dirs[t] = '=';
      }
    };
    expand(0);
  }

  for (const std::string& key : observed) {
    if (expected.count(key)) continue;
    add_mismatch(report, "dependence",
                 "observed dependence not reported by the analysis: "
                 "src-site>dst-site|kind(0=flow,1=anti,2=output)|dirs = " +
                     key);
    return;  // one counterexample per program suffices
  }
  for (const std::string& key : expected) {
    if (observed.count(key)) continue;
    const analysis::Dependence& d = *owner.at(key);
    add_mismatch(report, "dependence",
                 "reported dependence never observed in the replay: " + key +
                     " (" + std::string(analysis::dep_kind_name(d.kind)) +
                     " on " + d.array + ", " + d.src_label + " -> " +
                     d.dst_label + " " + d.direction_string() + ")");
    return;
  }
}

// ---------------------------------------------------------------------------
// Advisor-legality oracle: every recommendation must preserve dataflow and
// report honest per-site miss counts.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kAdviseAccessBudget = 50'000;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Hash of the final memory state under value-provenance semantics: each
// write stores a hash of (its site, the values its statement instance
// read, in order); unwritten elements read as a hash of their address. Any
// semantics-preserving reordering of statement instances leaves every
// read's producing write unchanged, hence the same final state; a
// reordering that breaks a flow/anti/output dependence changes it.
std::uint64_t dataflow_fingerprint(const ir::Program& prog,
                                   const sym::Env& env) {
  trace::CompiledProgram cp(prog, env);
  std::map<std::uint64_t, std::uint64_t> mem;
  std::vector<std::uint64_t> reads;
  cp.walk([&](const trace::Access& a) {
    if (a.mode == ir::AccessMode::kRead) {
      const auto it = mem.find(a.addr);
      reads.push_back(it != mem.end() ? it->second : mix64(a.addr));
      return;
    }
    // The statement grammar ends every instance with exactly one write,
    // which consumes the reads accumulated since the previous write.
    std::uint64_t h = mix64(0x5d1f00d5ULL + static_cast<std::uint64_t>(a.site));
    for (const std::uint64_t r : reads) h = mix64(h ^ r);
    mem[a.addr] = h;
    reads.clear();
  });
  std::uint64_t fp = 0x8f1e3a77c9b2d4e5ULL;
  for (const auto& [addr, v] : mem) fp += mix64(v ^ mix64(addr));
  return fp;
}

void check_advise_claims(OracleReport& report, const ir::Program& prog,
                         const sym::Env& env, const OracleOptions& opts) {
  if (report.accesses > kAdviseAccessBudget) return;

  analysis::AdvisorOptions aopts;
  aopts.capacity = opts.per_site_capacity;
  aopts.max_band_loops = 4;
  aopts.max_candidates = 8;
  aopts.tile_sizes = {2, 3};
  aopts.predict.enum_limit = std::int64_t{1} << 16;
  aopts.governor = opts.governor;
  const analysis::AdvisorReport rep = analysis::advise(prog, env, aopts);

  const std::uint64_t base_fp = dataflow_fingerprint(prog, env);
  for (const analysis::Advice& a : rep.advice) {
    if (governor_should_stop(opts.governor)) {
      report.truncated = true;
      return;
    }
    sym::Env full = env;
    for (const auto& [k, v] : a.env_extra) full[k] = v;

    if (dataflow_fingerprint(a.transformed, full) != base_fp) {
      add_mismatch(report, "advise-legality",
                   "recommended transform changes program dataflow: " +
                       a.title);
      return;
    }

    // Score honesty: an exact (or profiler-backed) claim must reproduce
    // bit-identically on the profiler, per-site miss counts included.
    if (a.confidence != model::Confidence::kExact && !a.simulated) continue;
    trace::CompiledProgram cp(a.transformed, full);
    const cachesim::SimResult ref =
        cachesim::profile_stack_distances(cp).result(aopts.capacity);
    bool same =
        static_cast<std::uint64_t>(a.predicted_misses) == ref.misses &&
        a.predicted_by_site.size() == ref.misses_by_site.size();
    for (std::size_t i = 0; same && i < a.predicted_by_site.size(); ++i)
      same = static_cast<std::uint64_t>(a.predicted_by_site[i]) ==
             ref.misses_by_site[i];
    if (!same) {
      std::ostringstream os;
      os << "claimed miss counts diverge from the profiler for '" << a.title
         << "': claimed " << a.predicted_misses << ", profiled "
         << ref.misses << " at capacity " << aopts.capacity;
      add_mismatch(report, "advise-score", os.str());
      return;
    }
  }
}

/// Full sweeps are the most expensive serve verb; bound the trace so the
/// serve oracle stays a small fraction of the battery.
constexpr std::uint64_t kServeSweepAccessBudget = 200'000;

/// Serve-vs-CLI equivalence (DESIGN.md §16): an in-process serve::Service
/// must answer every analysis verb with the exact bytes of the shared CLI
/// emitter, and a repeated request must hit the memo cache and return the
/// same bytes again.
void check_serve_equivalence(OracleReport& report, const ir::Program& prog,
                             const sym::Env& env, const OracleOptions& opts) {
  serve::ServiceOptions sopts;
  sopts.cache_entries = 32;
  serve::Service service(sopts);
  const std::string text = ir::to_code_string(prog);

  std::ostringstream envs;
  envs << "{";
  bool first = true;
  for (const auto& [name, value] : env) {
    envs << (first ? "" : ",") << "\"" << serve::json_escape(name)
         << "\":" << value;
    first = false;
  }
  envs << "}";
  const auto request_line = [&](const std::string& verb,
                                const std::string& extra) {
    return "{\"id\":\"" + verb + "\",\"verb\":\"" + verb +
           "\",\"program\":\"" + serve::json_escape(text) +
           "\",\"env\":" + envs.str() + extra + "}";
  };
  const auto chomp = [](std::string s) {
    if (!s.empty() && s.back() == '\n') s.pop_back();
    return s;
  };

  struct Case {
    std::string verb;
    std::string line;
    std::string expected;
  };
  std::vector<Case> cases;
  {
    std::ostringstream os;
    analysis::render_analyze_json(prog, os);
    cases.push_back({"analyze", request_line("analyze", ""),
                     chomp(os.str())});
  }
  {
    analysis::MissesOptions mo;
    mo.capacity = opts.per_site_capacity;
    std::ostringstream os;
    analysis::render_misses_json(analysis::run_misses(prog, env, mo), os);
    cases.push_back(
        {"misses",
         request_line("misses",
                      ",\"cap\":" + std::to_string(opts.per_site_capacity)),
         chomp(os.str())});
  }
  {
    analysis::LintOptions lo;
    lo.env = env;
    std::ostringstream os;
    analysis::render_json(analysis::lint_text(text, lo), os);
    cases.push_back({"lint", request_line("lint", ""), chomp(os.str())});
  }
  if (report.accesses <= kServeSweepAccessBudget) {
    const analysis::SweepOutcome oc =
        analysis::run_sweep(prog, env, analysis::SweepDriverOptions{});
    std::ostringstream os;
    analysis::render_sweep_json(oc, os, /*sites=*/false);
    cases.push_back({"sweep", request_line("sweep", ""), chomp(os.str())});
  }
  if (report.accesses <= kAdviseAccessBudget) {
    const ir::ParsedProgram pp = ir::parse_program_located(text);
    const analysis::AdvisorReport rep =
        analysis::advise(pp.prog, env, analysis::AdvisorOptions{}, &pp.locs);
    std::ostringstream os;
    analysis::render_advice_json(rep, os, 0);
    cases.push_back({"advise", request_line("advise", ""), chomp(os.str())});
  }

  for (const Case& c : cases) {
    if (governor_should_stop(opts.governor)) {
      report.truncated = true;
      return;
    }
    const serve::Response r1 = service.handle_line(c.line);
    if (r1.payload != c.expected) {
      add_mismatch(report, "serve",
                   c.verb + ": daemon payload differs from the CLI emitter ("
                   + std::to_string(r1.payload.size()) + " vs " +
                   std::to_string(c.expected.size()) + " bytes; status " +
                   serve::status_name(r1.status) +
                   (r1.error.empty() ? "" : ", error: " + r1.error) + ")");
      continue;
    }
    if (r1.status != serve::Status::kOk) continue;  // not memoized
    const serve::Response r2 = service.handle_line(c.line);
    if (!r2.cached) {
      add_mismatch(report, "serve",
                   c.verb + ": repeated request missed the memo cache");
    } else if (r2.payload != c.expected) {
      add_mismatch(report, "serve",
                   c.verb + ": cached payload is not byte-identical");
    }
  }
}

}  // namespace

OracleReport check_program(const ir::Program& prog, const sym::Env& env,
                           const OracleOptions& opts) {
  OracleReport report;
  // Polled before each oracle family: a tripped governor ends the battery
  // with the partial report marked truncated (the families already run are
  // complete and their mismatches are real).
  const auto out_of_budget = [&report, &opts] {
    if (!governor_should_stop(opts.governor)) {
      failpoints::hit(failpoints::kOracleStep);
      return false;
    }
    report.truncated = true;
    return true;
  };
  if (opts.check_roundtrip && !out_of_budget()) check_roundtrip(report, prog);

  trace::CompiledProgram cp(prog, env);
  report.accesses = cp.total_accesses();
  if (report.accesses > opts.max_trace_accesses) {
    report.skipped = true;
    return report;
  }
  if (opts.check_walker && !out_of_budget()) check_walker(report, cp);
  if (opts.check_model && !out_of_budget()) {
    check_model(report, prog, env, cp, opts);
  }
  if (opts.check_symbolic && !out_of_budget()) {
    check_symbolic_sweep(report, prog, env, cp, opts);
  }
  if (opts.check_profile && !out_of_budget()) check_profile(report, cp, opts);
  if (opts.check_sweep && !out_of_budget()) check_sweep(report, cp, opts);
  if (opts.check_partitioned && !out_of_budget()) {
    check_partitioned_engines(report, cp, opts);
  }
  if (opts.check_set_assoc && !out_of_budget()) {
    check_set_assoc_edges(report, cp, opts);
  }
  if (opts.check_budgeted && !out_of_budget()) {
    check_budgeted_degradation(report, cp, opts);
  }
  if (opts.check_lint && !out_of_budget()) {
    check_lint_gate(report, prog, env, opts);
  }
  if (opts.check_parallel && !out_of_budget()) {
    check_parallel_claims(report, prog, env);
  }
  if (opts.check_dependence && !out_of_budget()) {
    check_dependence_claims(report, prog, env);
  }
  if (opts.check_advise && !out_of_budget()) {
    check_advise_claims(report, prog, env, opts);
  }
  if (opts.check_serve && !out_of_budget()) {
    check_serve_equivalence(report, prog, env, opts);
  }
  return report;
}

namespace {

/// Name → flag table behind `sdlo fuzz --only`, in battery order.
struct FamilyEntry {
  const char* name;
  bool OracleOptions::*flag;
};

constexpr std::array<FamilyEntry, 14> kFamilies = {{
    {"roundtrip", &OracleOptions::check_roundtrip},
    {"walker", &OracleOptions::check_walker},
    {"model", &OracleOptions::check_model},
    {"symbolic", &OracleOptions::check_symbolic},
    {"profile", &OracleOptions::check_profile},
    {"sweep", &OracleOptions::check_sweep},
    {"partitioned", &OracleOptions::check_partitioned},
    {"set-assoc", &OracleOptions::check_set_assoc},
    {"lint", &OracleOptions::check_lint},
    {"parallel", &OracleOptions::check_parallel},
    {"budgeted", &OracleOptions::check_budgeted},
    {"dependence", &OracleOptions::check_dependence},
    {"advise", &OracleOptions::check_advise},
    {"serve", &OracleOptions::check_serve},
}};

}  // namespace

std::vector<std::string> oracle_family_names() {
  std::vector<std::string> names;
  names.reserve(kFamilies.size());
  for (const FamilyEntry& f : kFamilies) names.emplace_back(f.name);
  return names;
}

void apply_family_filter(OracleOptions& opts, const std::string& only) {
  if (only.empty()) return;
  for (const FamilyEntry& f : kFamilies) opts.*(f.flag) = false;
  std::stringstream ss(only);
  std::string name;
  while (std::getline(ss, name, ',')) {
    bool found = false;
    for (const FamilyEntry& f : kFamilies) {
      if (name == f.name) {
        opts.*(f.flag) = true;
        found = true;
        break;
      }
    }
    if (!found) {
      std::string valid;
      for (const FamilyEntry& f : kFamilies) {
        if (!valid.empty()) valid += ", ";
        valid += f.name;
      }
      throw Error("unknown oracle family '" + name +
                  "' (valid families: " + valid + ")");
    }
  }
}

namespace {

std::string render(const ir::Program& prog, const sym::Env& env,
                   const OracleReport& report, const std::string& origin) {
  std::ostringstream os;
  os << "differential oracle failure (" << report.mismatches.size()
     << " mismatch" << (report.mismatches.size() == 1 ? "" : "es") << ")\n";
  if (!origin.empty()) os << origin << "\n";
  os << "env:";
  for (const auto& [name, value] : env) os << " " << name << "=" << value;
  os << "\nprogram (replayable through ir::parse_program):\n"
     << ir::to_code_string(prog);
  for (const auto& m : report.mismatches) {
    os << "[" << m.oracle << "] " << m.detail << "\n";
  }
  return os.str();
}

}  // namespace

std::string describe_failure(const GeneratedProgram& gp,
                             const OracleReport& report) {
  std::ostringstream origin;
  origin << "seed " << gp.seed << " index " << gp.index
         << " (replay: ProgramGenerator(" << gp.seed << ").generate() x"
         << (gp.index + 1) << ", or `sdlo fuzz --seed " << gp.seed << "`)";
  return render(gp.prog, gp.env, report, origin.str());
}

std::string describe_failure(const ir::Program& prog, const sym::Env& env,
                             const OracleReport& report) {
  return render(prog, env, report, "");
}

}  // namespace sdlo::fuzz
