// Greedy delta-debugging reducer for counterexample programs.
//
// When a differential oracle (fuzz/oracles.hpp) finds a program on which
// two implementations disagree, the raw generated program is usually far
// larger than the disagreement needs. reduce() shrinks it while a caller
// supplied predicate keeps reporting failure, by repeatedly trying, in
// order of expected payoff:
//
//   * deleting whole band subtrees and statements
//   * removing a loop variable globally (from every band that declares it
//     and every subscript that mentions it; bands left loop-less are
//     spliced into their parent)
//   * removing read accesses from statements (the trailing write stays, so
//     programs remain expressible in the textual IR grammar)
//   * dropping a subscript dimension of an array globally, or removing one
//     variable from a fused (mixed-radix) subscript globally — "globally"
//     keeps every reference to an array structurally identical, which the
//     constrained class requires
//   * shrinking environment bindings (loop extents) toward 1
//
// Each candidate is re-validated and re-tested; candidates that no longer
// fail (or are no longer valid programs) are discarded. The result is a
// 1-minimal-ish program: no single remaining step of the above shrinks it
// further. Artifacts round-trip through ir::Printer / ir::Parser with the
// environment carried in `# set NAME=VALUE` comment lines.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "ir/program.hpp"
#include "symbolic/expr.hpp"

namespace sdlo::fuzz {

/// Returns true when (prog, env) still exhibits the failure being chased.
/// reduce() treats a predicate that throws as "does not fail" and discards
/// the candidate, so oracle predicates need no exception guards.
using FailurePredicate =
    std::function<bool(const ir::Program&, const sym::Env&)>;

struct ReducerOptions {
  /// Hard cap on predicate evaluations (each one typically re-simulates).
  std::size_t max_evaluations = 20'000;
};

/// Outcome of a reduction run.
struct Reduction {
  ir::Program prog;          ///< minimized program (still failing)
  sym::Env env;              ///< minimized environment
  std::size_t evaluations = 0;  ///< predicate calls spent
  std::size_t steps = 0;        ///< shrinking steps that were kept
};

/// Shrinks `prog`/`env` while `fails` holds. Precondition: fails(prog, env)
/// is true (throws ContractViolation otherwise — reducing a passing program
/// is always a caller bug).
Reduction reduce(const ir::Program& prog, const sym::Env& env,
                 const FailurePredicate& fails,
                 const ReducerOptions& opts = {});

/// Renders a replayable counterexample artifact: `# set NAME=VALUE` comment
/// lines for the environment followed by the ir::Printer program text. The
/// note, when non-empty, is embedded as additional comment lines.
std::string to_artifact(const ir::Program& prog, const sym::Env& env,
                        const std::string& note = "");

/// A parsed counterexample artifact.
struct Artifact {
  ir::Program prog;
  sym::Env env;
};

/// Parses an artifact produced by to_artifact (or any textual IR program
/// with `# set NAME=VALUE` comments). Throws ParseError on malformed input.
Artifact parse_artifact(const std::string& text);

/// Atomically writes an artifact (or any text) to `path`: the content goes
/// to `path` + ".tmp" first, is flushed and checked, and only then renamed
/// over `path` — a crash, disk-full error, or injected fault mid-write can
/// never leave a truncated file at `path` (the temp file is removed on
/// failure). Throws Error when the write or rename fails.
void write_artifact_file(const std::string& path, const std::string& content);

}  // namespace sdlo::fuzz
