#include "fuzz/generator.hpp"

#include <algorithm>
#include <utility>

namespace sdlo::fuzz {

using sym::Expr;

ProgramGenerator::ProgramGenerator(std::uint64_t seed, GeneratorOptions opts)
    : opts_(std::move(opts)), seed_(seed), rng_(seed) {
  for (int i = 0; i < opts_.num_variables; ++i) {
    var_extent_["v" + std::to_string(i)] =
        rng_.range(opts_.min_extent, opts_.max_extent);
  }
}

Expr ProgramGenerator::extent_of(const std::string& var) const {
  return Expr::symbol(var + "_N");
}

sym::Env ProgramGenerator::env() const {
  sym::Env e;
  for (const auto& [name, extent] : var_extent_) e[name + "_N"] = extent;
  return e;
}

GeneratedProgram ProgramGenerator::generate() {
  GeneratedProgram out;
  out.seed = seed_;
  out.index = index_++;
  arrays_.clear();
  stmt_counter_ = 0;
  ir::Program& p = out.prog;
  const int top = static_cast<int>(rng_.range(1, opts_.max_top_bands));
  for (int i = 0; i < top; ++i) {
    gen_band(p, ir::Program::kRoot, {}, 0);
  }
  if (stmt_counter_ == 0) {
    // Guarantee at least one statement.
    ir::NodeId b =
        p.add_band(ir::Program::kRoot, {ir::Loop{"v0", extent_of("v0")}});
    add_statement(p, b, {"v0"});
  }
  p.validate();
  out.env = env();
  return out;
}

void ProgramGenerator::gen_band(ir::Program& p, ir::NodeId parent,
                                std::vector<std::string> path, int depth) {
  // Pick 1-2 fresh loop variables for this band (the pool is shared with
  // sibling bands, which is what creates cross-branch reuse).
  std::vector<std::string> avail;
  for (const auto& [name, extent] : var_extent_) {
    (void)extent;
    if (std::find(path.begin(), path.end(), name) == path.end()) {
      avail.push_back(name);
    }
  }
  if (avail.empty()) return;
  const int nloops = std::min<int>(static_cast<int>(rng_.range(1, 2)),
                                   static_cast<int>(avail.size()));
  std::vector<ir::Loop> loops;
  for (int i = 0; i < nloops; ++i) {
    const auto pick = rng_.below(avail.size());
    const std::string var = avail[pick];
    avail.erase(avail.begin() + static_cast<std::ptrdiff_t>(pick));
    loops.push_back(ir::Loop{var, extent_of(var)});
    path.push_back(var);
  }
  ir::NodeId band = p.add_band(parent, std::move(loops));

  const int kids = static_cast<int>(rng_.range(1, opts_.max_children));
  for (int k = 0; k < kids; ++k) {
    if (depth < opts_.max_depth &&
        rng_.below(100) < static_cast<std::uint64_t>(opts_.subband_pct)) {
      gen_band(p, band, path, depth + 1);
    } else {
      add_statement(p, band, path);
    }
  }
  // A band whose sub-band recursion produced nothing (variable pool
  // exhausted) must not stay a childless leaf.
  if (p.children(band).empty()) add_statement(p, band, path);
}

void ProgramGenerator::add_statement(ir::Program& p, ir::NodeId band,
                                     const std::vector<std::string>& path) {
  ir::Statement s;
  s.label = "S" + std::to_string(++stmt_counter_);
  // Grammar-compatible access order: reads of other arrays, an optional
  // self-read of the target, then the write. The target is chosen first so
  // reads can avoid aliasing it (the printer folds any read of the target
  // into "+=", so a second aliasing read would not round-trip).
  ir::ArrayRef target = make_ref(path, ir::AccessMode::kWrite, "");
  const int nreads = static_cast<int>(rng_.range(0, opts_.max_reads));
  for (int r = 0; r < nreads; ++r) {
    s.accesses.push_back(
        make_ref(path, ir::AccessMode::kRead, target.array));
  }
  if (rng_.below(100) < static_cast<std::uint64_t>(opts_.self_read_pct)) {
    ir::ArrayRef self = target;
    self.mode = ir::AccessMode::kRead;
    s.accesses.push_back(std::move(self));
  }
  s.accesses.push_back(std::move(target));
  p.add_statement(band, std::move(s));
}

ir::ArrayRef ProgramGenerator::make_ref(const std::vector<std::string>& path,
                                        ir::AccessMode mode,
                                        const std::string& avoid_array) {
  ir::ArrayRef ref;
  ref.mode = mode;
  // Half the time, reuse an existing array whose variables are all on the
  // current path (cross-branch reuse by shared names).
  if (!arrays_.empty() &&
      rng_.below(100) < static_cast<std::uint64_t>(opts_.reuse_array_pct)) {
    std::vector<const std::pair<const std::string,
                                std::vector<ir::Subscript>>*> usable;
    for (const auto& entry : arrays_) {
      if (entry.first == avoid_array) continue;
      bool ok = true;
      for (const auto& sub : entry.second) {
        for (const auto& v : sub.vars) {
          if (std::find(path.begin(), path.end(), v) == path.end()) {
            ok = false;
          }
        }
      }
      if (ok) usable.push_back(&entry);
    }
    if (!usable.empty()) {
      const auto* chosen = usable[rng_.below(usable.size())];
      ref.array = chosen->first;
      ref.subscripts = chosen->second;
      return ref;
    }
  }
  // Otherwise mint a new array over a random subset of path variables
  // (possibly empty: a scalar), grouped into dims of 1-2 variables — pairs
  // model tiled mixed-radix subscripts like T[iT+iI].
  std::vector<std::string> vars;
  for (const auto& v : path) {
    if (rng_.below(100) < static_cast<std::uint64_t>(opts_.var_use_pct)) {
      vars.push_back(v);
    }
  }
  std::vector<ir::Subscript> subs;
  for (std::size_t i = 0; i < vars.size();) {
    ir::Subscript sub;
    sub.vars.push_back(vars[i++]);
    if (i < vars.size() &&
        rng_.below(100) <
            static_cast<std::uint64_t>(opts_.tiled_subscript_pct)) {
      sub.vars.push_back(vars[i++]);
    }
    subs.push_back(std::move(sub));
  }
  ref.array = "ar" + std::to_string(arrays_.size());
  ref.subscripts = subs;
  arrays_.emplace(ref.array, std::move(subs));
  return ref;
}

}  // namespace sdlo::fuzz
