#include "fuzz/reducer.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "support/check.hpp"
#include "support/failpoints.hpp"
#include "support/string_util.hpp"

namespace sdlo::fuzz {

namespace {

// ---------------------------------------------------------------------------
// Mutable mirror of the Program tree. ir::Program is append-only, so every
// candidate edit is performed on this copyable structure and rebuilt.
// ---------------------------------------------------------------------------

struct MutNode {
  bool is_stmt = false;
  std::vector<ir::Loop> loops;  // band
  ir::Statement stmt;           // statement
  std::vector<MutNode> children;
};

struct State {
  std::vector<MutNode> top;  // children of the root
  sym::Env env;
};

MutNode build_node(const ir::Program& p, ir::NodeId n) {
  MutNode m;
  if (p.is_statement(n)) {
    m.is_stmt = true;
    m.stmt = p.statement(n);
    return m;
  }
  m.loops = p.band_loops(n);
  for (ir::NodeId c : p.children(n)) m.children.push_back(build_node(p, c));
  return m;
}

State build_state(const ir::Program& p, const sym::Env& env) {
  State s;
  s.env = env;
  for (ir::NodeId c : p.children(ir::Program::kRoot)) {
    s.top.push_back(build_node(p, c));
  }
  return s;
}

void add_node(ir::Program& p, ir::NodeId parent, const MutNode& n) {
  if (n.is_stmt) {
    p.add_statement(parent, n.stmt);
    return;
  }
  ir::NodeId band = p.add_band(parent, n.loops);
  for (const MutNode& c : n.children) add_node(p, band, c);
}

/// Rebuilds and validates; nullopt when the candidate left the constrained
/// class (the caller just discards it).
std::optional<ir::Program> rebuild(const State& s) {
  try {
    ir::Program p;
    for (const MutNode& n : s.top) add_node(p, ir::Program::kRoot, n);
    p.validate();
    return p;
  } catch (const Error&) {
    return std::nullopt;
  }
}

// ---------------------------------------------------------------------------
// Candidate edits. Each enumerator appends whole candidate States, ordered
// by expected payoff within its family.
// ---------------------------------------------------------------------------

using Path = std::vector<std::size_t>;  // child indices from the root

void collect_paths(const std::vector<MutNode>& nodes, const Path& prefix,
                   std::vector<Path>& out) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    Path p = prefix;
    p.push_back(i);
    out.push_back(p);  // pre-order: outer subtrees first (bigger deletions)
    if (!nodes[i].is_stmt) collect_paths(nodes[i].children, p, out);
  }
}

void delete_at(std::vector<MutNode>& nodes, const Path& path,
               std::size_t depth = 0) {
  const std::size_t i = path[depth];
  if (depth + 1 == path.size()) {
    nodes.erase(nodes.begin() + static_cast<std::ptrdiff_t>(i));
    return;
  }
  delete_at(nodes[i].children, path, depth + 1);
}

void enum_node_deletions(const State& base, std::vector<State>& out) {
  std::vector<Path> paths;
  collect_paths(base.top, {}, paths);
  for (const Path& p : paths) {
    State s = base;
    delete_at(s.top, p);
    out.push_back(std::move(s));
  }
}

/// Removes loop variable `v` everywhere: from every band declaring it
/// (splicing bands left loop-less into their parent) and from every
/// subscript mentioning it (dropping subscript dims left empty).
void strip_var_node(MutNode n, const std::string& v,
                    std::vector<MutNode>& out) {
  if (n.is_stmt) {
    for (auto& a : n.stmt.accesses) {
      std::vector<ir::Subscript> subs;
      for (auto& sub : a.subscripts) {
        std::erase(sub.vars, v);
        if (!sub.vars.empty()) subs.push_back(std::move(sub));
      }
      a.subscripts = std::move(subs);
    }
    out.push_back(std::move(n));
    return;
  }
  std::erase_if(n.loops, [&](const ir::Loop& l) { return l.var == v; });
  std::vector<MutNode> kids;
  for (auto& c : n.children) strip_var_node(std::move(c), v, kids);
  n.children = std::move(kids);
  if (n.loops.empty()) {
    for (auto& c : n.children) out.push_back(std::move(c));
  } else {
    out.push_back(std::move(n));
  }
}

void collect_vars(const std::vector<MutNode>& nodes,
                  std::set<std::string>& vars) {
  for (const auto& n : nodes) {
    if (n.is_stmt) continue;
    for (const auto& l : n.loops) vars.insert(l.var);
    collect_vars(n.children, vars);
  }
}

void enum_var_removals(const State& base, std::vector<State>& out) {
  std::set<std::string> vars;
  collect_vars(base.top, vars);
  for (const auto& v : vars) {
    State s = base;
    std::vector<MutNode> top;
    for (auto& n : s.top) strip_var_node(std::move(n), v, top);
    s.top = std::move(top);
    out.push_back(std::move(s));
  }
}

template <typename Fn>
void for_each_statement(std::vector<MutNode>& nodes, Fn&& fn) {
  for (auto& n : nodes) {
    if (n.is_stmt) {
      fn(n.stmt);
    } else {
      for_each_statement(n.children, fn);
    }
  }
}

void enum_access_removals(const State& base, std::vector<State>& out) {
  // One candidate per removable (statement, read-access) pair, addressed by
  // a running statement counter so indices survive the copy. Writes stay:
  // the textual grammar requires every statement to end in one.
  int nstmts = 0;
  {
    State probe = base;
    for_each_statement(probe.top, [&](ir::Statement&) { ++nstmts; });
  }
  for (int target = 0; target < nstmts; ++target) {
    // Count removable accesses of this statement first.
    std::size_t nacc = 0;
    {
      State probe = base;
      int idx = 0;
      for_each_statement(probe.top, [&](ir::Statement& st) {
        if (idx++ == target) nacc = st.accesses.size();
      });
    }
    for (std::size_t a = 0; a < nacc; ++a) {
      State s = base;
      int idx = 0;
      bool removed = false;
      for_each_statement(s.top, [&](ir::Statement& st) {
        if (idx++ != target) return;
        if (st.accesses[a].mode != ir::AccessMode::kRead) return;
        st.accesses.erase(st.accesses.begin() +
                          static_cast<std::ptrdiff_t>(a));
        removed = true;
      });
      if (removed) out.push_back(std::move(s));
    }
  }
}

void enum_subscript_simplifications(const State& base,
                                    std::vector<State>& out) {
  // Arrays have one global subscript structure; collect it from the first
  // reference, then edit every reference identically.
  std::map<std::string, std::vector<std::size_t>> dims;  // array -> var counts
  {
    State probe = base;
    for_each_statement(probe.top, [&](ir::Statement& st) {
      for (auto& a : st.accesses) {
        if (dims.count(a.array)) continue;
        std::vector<std::size_t> d;
        for (auto& sub : a.subscripts) d.push_back(sub.vars.size());
        dims.emplace(a.array, std::move(d));
      }
    });
  }
  for (const auto& [array, var_counts] : dims) {
    for (std::size_t d = 0; d < var_counts.size(); ++d) {
      // Drop the whole dimension everywhere.
      {
        State s = base;
        for_each_statement(s.top, [&, array = array](ir::Statement& st) {
          for (auto& a : st.accesses) {
            if (a.array != array) continue;
            a.subscripts.erase(a.subscripts.begin() +
                               static_cast<std::ptrdiff_t>(d));
          }
        });
        out.push_back(std::move(s));
      }
      // Un-fuse: remove one variable from a mixed-radix pair everywhere.
      for (std::size_t k = 0; var_counts[d] > 1 && k < var_counts[d]; ++k) {
        State s = base;
        for_each_statement(s.top, [&, array = array](ir::Statement& st) {
          for (auto& a : st.accesses) {
            if (a.array != array) continue;
            auto& vars = a.subscripts[d].vars;
            vars.erase(vars.begin() + static_cast<std::ptrdiff_t>(k));
          }
        });
        out.push_back(std::move(s));
      }
    }
  }
}

void enum_extent_shrinks(const State& base, std::vector<State>& out) {
  for (const auto& [name, value] : base.env) {
    auto with = [&, name = name](std::int64_t v) {
      State s = base;
      s.env[name] = v;
      out.push_back(std::move(s));
    };
    if (value > 1) with(1);
    if (value >= 4) with(value / 2);
    if (value > 2) with(value - 1);
  }
}

std::vector<State> enumerate(const State& base) {
  std::vector<State> out;
  enum_node_deletions(base, out);
  enum_var_removals(base, out);
  enum_access_removals(base, out);
  enum_subscript_simplifications(base, out);
  enum_extent_shrinks(base, out);
  return out;
}

}  // namespace

Reduction reduce(const ir::Program& prog, const sym::Env& env,
                 const FailurePredicate& fails, const ReducerOptions& opts) {
  SDLO_CHECK(fails(prog, env),
             "reduce() requires a failing (program, env) to start from");
  Reduction result;
  result.env = env;
  State state = build_state(prog, env);
  std::size_t evaluations = 0;

  auto try_state = [&](const State& s) -> std::optional<ir::Program> {
    ++evaluations;
    auto rebuilt = rebuild(s);
    if (!rebuilt) return std::nullopt;
    try {
      if (!fails(*rebuilt, s.env)) return std::nullopt;
    } catch (const std::exception&) {
      return std::nullopt;  // candidate broke the predicate's preconditions
    }
    return rebuilt;
  };

  // Greedy fixpoint: after every kept edit, re-enumerate from the smaller
  // program (earlier-family edits often become possible again).
  for (;;) {
    bool improved = false;
    for (State& candidate : enumerate(state)) {
      if (evaluations >= opts.max_evaluations) break;
      if (try_state(candidate)) {
        state = std::move(candidate);
        ++result.steps;
        improved = true;
        break;
      }
    }
    if (!improved || evaluations >= opts.max_evaluations) break;
  }

  auto final_prog = rebuild(state);
  SDLO_ENSURES(final_prog.has_value());
  result.prog = std::move(*final_prog);
  result.env = std::move(state.env);
  result.evaluations = evaluations;
  return result;
}

std::string to_artifact(const ir::Program& prog, const sym::Env& env,
                        const std::string& note) {
  std::ostringstream os;
  os << "# sdlo fuzz counterexample\n";
  if (!note.empty()) {
    std::istringstream lines(note);
    std::string line;
    while (std::getline(lines, line)) os << "# " << line << "\n";
  }
  for (const auto& [name, value] : env) {
    os << "# set " << name << "=" << value << "\n";
  }
  os << ir::to_code_string(prog);
  return os.str();
}

Artifact parse_artifact(const std::string& text) {
  sym::Env env;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const std::string trimmed(trim(line));
    if (!starts_with(trimmed, "# set ")) continue;
    const std::string binding(trim(trimmed.substr(6)));
    const auto eq = binding.find('=');
    if (eq == std::string::npos) {
      throw ParseError("malformed artifact binding: " + trimmed);
    }
    env[std::string(trim(binding.substr(0, eq)))] =
        parse_int(binding.substr(eq + 1));
  }
  // Comments are whitespace to the program grammar, so the whole artifact
  // text parses directly.
  return Artifact{ir::parse_program(text), std::move(env)};
}

void write_artifact_file(const std::string& path,
                         const std::string& content) {
  const std::string tmp = path + ".tmp";
  try {
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      SDLO_CHECK(out.good(), "cannot open artifact temp file " + tmp);
      // Split the write so the artifact-write failpoint lands mid-file:
      // an injected fault here must leave `path` untouched.
      const std::size_t half = content.size() / 2;
      out.write(content.data(), static_cast<std::streamsize>(half));
      failpoints::hit(failpoints::kArtifactWrite);
      out.write(content.data() + half,
                static_cast<std::streamsize>(content.size() - half));
      out.flush();
      SDLO_CHECK(out.good(), "short write to artifact temp file " + tmp);
    }
    std::filesystem::rename(tmp, path);
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);  // best effort; keep the original
    throw;
  }
}

}  // namespace sdlo::fuzz
