// Seeded generator of valid constrained-class loop-nest programs.
//
// Promoted from the embedded generator that used to live inside
// tests/property_random_test.cpp: the differential fuzzing subsystem (see
// DESIGN.md §8) needs the same program distribution from the CLI fuzzer,
// the property tests, and the counterexample reducer, so it lives here as a
// library.
//
// Generated programs cover the corner cases no hand-written gallery kernel
// exercises: arbitrary imperfect nest shapes, the SAME loop variable shared
// across sibling subtrees (the TCE tile-buffer reuse pattern), scalars,
// tiling-like mixed-radix subscript pairs, and multi-access statements.
//
// Two invariants beyond ir::Program::validate() are guaranteed, because the
// reducer's artifact format depends on them:
//  * Every program round-trips through the textual IR:
//    parse_program(to_code_string(p)) is structurally equal to p. This
//    constrains statement shape to what the grammar can express — zero or
//    more reads of arrays other than the target, an optional self-read of
//    the target ("+="), then exactly one write, in that order.
//  * Every free symbol of the program is bound by env(), with extents that
//    evaluate to small positive values, so traces stay CI-sized.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/program.hpp"
#include "support/rng.hpp"
#include "symbolic/expr.hpp"

namespace sdlo::fuzz {

/// Tuning knobs for the program distribution. The defaults match the
/// historical property-test distribution (small extents, nests up to three
/// bands deep) so fixed seeds keep their coverage.
struct GeneratorOptions {
  /// Size of the shared loop-variable pool (v0..v{n-1}). Re-declaring a
  /// pool variable in sibling branches always uses the same extent.
  int num_variables = 6;
  /// Inclusive range of concrete per-variable extents bound by env().
  std::int64_t min_extent = 2;
  std::int64_t max_extent = 5;
  /// Number of top-level bands: uniform in [1, max_top_bands].
  int max_top_bands = 3;
  /// Maximum band nesting depth below a top-level band.
  int max_depth = 2;
  /// Children per band: uniform in [1, max_children].
  int max_children = 3;
  /// Percent chance a band child is a sub-band rather than a statement.
  int subband_pct = 45;
  /// Maximum reads per statement (excluding the optional self-read).
  int max_reads = 2;
  /// Percent chance a statement accumulates ("+=": reads its own target).
  int self_read_pct = 30;
  /// Percent chance a read reuses an existing array (cross-branch reuse).
  int reuse_array_pct = 50;
  /// Percent chance each path variable participates in a new array's
  /// subscripts (misses can leave a scalar).
  int var_use_pct = 60;
  /// Percent chance two adjacent subscript variables fuse into one
  /// mixed-radix dimension (a tiling-like split, e.g. T[iT+iI]).
  int tiled_subscript_pct = 33;
};

/// One generated program plus everything needed to replay or report it.
struct GeneratedProgram {
  std::uint64_t seed = 0;  ///< seed the generator was constructed with
  int index = 0;           ///< 0-based position in the generator's stream
  ir::Program prog;        ///< validated program
  sym::Env env;            ///< binds every free symbol (extents)
};

/// Deterministic stream of generated programs: the same (seed, options)
/// always yields the same sequence, on every platform.
class ProgramGenerator {
 public:
  explicit ProgramGenerator(std::uint64_t seed, GeneratorOptions opts = {});

  /// Generates the next program of the stream.
  GeneratedProgram generate();

  /// Environment binding every pool-variable extent symbol ("v3_N" = 4).
  sym::Env env() const;

  const GeneratorOptions& options() const { return opts_; }

 private:
  sym::Expr extent_of(const std::string& var) const;
  void gen_band(ir::Program& p, ir::NodeId parent,
                std::vector<std::string> path, int depth);
  void add_statement(ir::Program& p, ir::NodeId band,
                     const std::vector<std::string>& path);
  ir::ArrayRef make_ref(const std::vector<std::string>& path,
                        ir::AccessMode mode,
                        const std::string& avoid_array);

  GeneratorOptions opts_;
  std::uint64_t seed_;
  int index_ = 0;
  SplitMix64 rng_;
  std::map<std::string, std::int64_t> var_extent_;
  std::map<std::string, std::vector<ir::Subscript>> arrays_;
  int stmt_counter_ = 0;
};

}  // namespace sdlo::fuzz
