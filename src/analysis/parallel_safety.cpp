#include "analysis/parallel_safety.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "support/check.hpp"
#include "support/checked_math.hpp"

namespace sdlo::analysis {

namespace {

using ir::NodeId;

/// Statements under `n`, in program order.
void collect_statements(const ir::Program& prog, NodeId n,
                        std::vector<NodeId>& out) {
  if (prog.is_statement(n)) {
    out.push_back(n);
    return;
  }
  for (NodeId c : prog.children(n)) collect_statements(prog, c, out);
}

/// How one band subtree uses each array, in first-touch program order.
struct SubtreeUse {
  std::set<std::string> arrays;
  std::set<std::string> written;
  std::map<std::string, ir::AccessMode> first_touch;
};

SubtreeUse subtree_use(const ir::Program& prog, NodeId band) {
  SubtreeUse use;
  std::vector<NodeId> stmts;
  collect_statements(prog, band, stmts);
  for (NodeId s : stmts) {
    for (const auto& ref : prog.statement(s).accesses) {
      use.arrays.insert(ref.array);
      if (ref.mode == ir::AccessMode::kWrite) use.written.insert(ref.array);
      use.first_touch.emplace(ref.array, ref.mode);  // first wins
    }
  }
  return use;
}

/// Number of references to `array` in the whole program (to detect uses
/// outside a subtree, which rule out privatization: the last value would be
/// live-out of the private copies).
std::size_t total_refs(const ir::Program& prog, const std::string& array) {
  return prog.refs_to(array).size();
}

std::size_t subtree_refs(const ir::Program& prog, NodeId band,
                         const std::string& array) {
  std::size_t n = 0;
  std::vector<NodeId> stmts;
  collect_statements(prog, band, stmts);
  for (NodeId s : stmts) {
    for (const auto& ref : prog.statement(s).accesses) {
      if (ref.array == array) ++n;
    }
  }
  return n;
}

/// Mixed-radix weight of loop `var`'s digit in `array`: the number of
/// elements between consecutive values of `var`, i.e. the product of the
/// extents of all subscript variables after `var` in flattened subscript
/// order. Returns nullopt when the weight cannot be evaluated.
std::optional<std::int64_t> digit_stride(const ir::Program& prog,
                                         const std::string& array,
                                         const std::string& var,
                                         const sym::Env& env) {
  const auto& vars = prog.array_vars(array);
  const auto it = std::find(vars.begin(), vars.end(), var);
  if (it == vars.end()) return std::nullopt;
  std::int64_t stride = 1;
  for (auto after = it + 1; after != vars.end(); ++after) {
    const auto v = sym::try_evaluate(prog.extent_of(*after), env);
    if (!v || *v <= 0) return std::nullopt;
    stride = sat_mul(stride, *v);
  }
  return stride;
}

void analyze_band(const ir::Program& prog, NodeId band, const sym::Env* env,
                  std::int64_t line_elems,
                  std::vector<LoopParallelism>& out) {
  const auto& loops = prog.band_loops(band);
  if (!loops.empty()) {
    const SubtreeUse use = subtree_use(prog, band);
    for (std::size_t k = 0; k < loops.size(); ++k) {
      LoopParallelism lp;
      lp.var = loops[k].var;
      lp.band = band;
      lp.index_in_band = static_cast<int>(k);
      lp.top_level = prog.parent(band) == ir::Program::kRoot;
      for (const auto& array : use.arrays) {
        if (use.written.count(array) == 0) continue;  // read-only: safe
        const auto& avars = prog.array_vars(array);
        const bool disjoint =
            std::find(avars.begin(), avars.end(), lp.var) != avars.end();
        if (disjoint) {
          // Distinct v iterations address distinct elements; the only
          // remaining hazard is sharing a cache line across the seam.
          if (env != nullptr && line_elems > 1) {
            const auto stride = digit_stride(prog, array, lp.var, *env);
            if (stride && *stride < line_elems) {
              lp.hazards.push_back(
                  FalseSharingHazard{array, *stride, line_elems});
            }
          }
          continue;
        }
        const bool kill_first =
            use.first_touch.at(array) == ir::AccessMode::kWrite &&
            subtree_refs(prog, band, array) == total_refs(prog, array);
        if (kill_first) {
          lp.privatized.push_back(array);
        } else {
          lp.carried.push_back(array);
        }
      }
      lp.doall_safe = lp.carried.empty();
      out.push_back(std::move(lp));
    }
  }
  for (NodeId c : prog.children(band)) {
    if (!prog.is_statement(c)) {
      analyze_band(prog, c, env, line_elems, out);
    }
  }
}

}  // namespace

std::vector<LoopParallelism> analyze_parallel_safety(const ir::Program& prog,
                                                     const sym::Env* env,
                                                     std::int64_t line_elems) {
  SDLO_CHECK(prog.validated(),
             "analyze_parallel_safety requires a validated program");
  std::vector<LoopParallelism> out;
  analyze_band(prog, ir::Program::kRoot, env, line_elems, out);
  return out;
}

void require_partition_safety(const ir::Program& prog,
                              const std::string& bound) {
  const auto verdicts = analyze_parallel_safety(prog);
  const auto verdict_of = [&](NodeId band, int index)
      -> const LoopParallelism& {
    for (const auto& lp : verdicts) {
      if (lp.band == band && lp.index_in_band == index) return lp;
    }
    throw ContractViolation("band loop without a safety verdict");
  };

  for (NodeId top : prog.children(ir::Program::kRoot)) {
    // Only subtrees that write anything constrain the partitioning.
    std::vector<NodeId> stmts;
    collect_statements(prog, top, stmts);
    const bool writes = std::any_of(
        stmts.begin(), stmts.end(), [&](NodeId s) {
          const auto& acc = prog.statement(s).accesses;
          return std::any_of(acc.begin(), acc.end(), [](const auto& r) {
            return r.mode == ir::AccessMode::kWrite;
          });
        });
    if (!writes) continue;

    // The outermost loop in this subtree whose extent depends on `bound` is
    // the one block-partitioning distributes.
    const LoopParallelism* part_loop = nullptr;
    std::vector<NodeId> pending{top};
    for (std::size_t i = 0; i < pending.size() && part_loop == nullptr; ++i) {
      const NodeId n = pending[i];
      if (prog.is_statement(n)) continue;
      const auto& loops = prog.band_loops(n);
      for (std::size_t k = 0; k < loops.size(); ++k) {
        if (sym::symbols_of(loops[k].extent).count(bound) != 0) {
          part_loop = &verdict_of(n, static_cast<int>(k));
          break;
        }
      }
      for (NodeId c : prog.children(n)) pending.push_back(c);
    }
    if (part_loop == nullptr) {
      throw UnsupportedProgram(
          "cannot partition '" + bound +
          "': a writing subtree has no loop whose extent depends on it");
    }
    if (!part_loop->doall_safe) {
      std::string arrays;
      for (const auto& a : part_loop->carried) {
        arrays += (arrays.empty() ? "" : ", ") + a;
      }
      throw UnsupportedProgram(
          "partitioning '" + bound + "' is not synchronization-free: loop '" +
          part_loop->var + "' carries a dependence through " + arrays);
    }
  }
}

}  // namespace sdlo::analysis
