#include "analysis/advisor.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <optional>
#include <ostream>
#include <set>
#include <sstream>

#include "analysis/parallel_safety.hpp"
#include "cachesim/sim.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "trace/walker.hpp"

namespace sdlo::analysis {

namespace {

struct Score {
  std::int64_t misses = 0;
  std::vector<std::int64_t> by_site;
  model::Confidence conf = model::Confidence::kExact;
  bool simulated = false;
};

/// Scores one program variant: the model first; when it is approximate and
/// the concrete trace is affordable, the exact stack-distance profiler
/// (Governor-threaded — a truncated profile is discarded, keeping the
/// model's estimate rather than a prefix count).
Score score_program(const ir::Program& prog, const sym::Env& env,
                    const AdvisorOptions& opts) {
  model::Analysis an = model::analyze(prog);
  model::MissPrediction pred =
      model::predict_misses(an, env, opts.capacity, opts.predict);
  Score s;
  s.misses = pred.misses;
  s.by_site = pred.misses_by_site;
  s.conf = pred.confidence;
  if (pred.confidence == model::Confidence::kApproximate) {
    std::optional<std::int64_t> total =
        sym::try_evaluate(prog.total_accesses(), env);
    if (total && *total <= opts.max_sim_accesses) {
      trace::CompiledProgram cp(prog, env);
      cachesim::ProfileResult prof = cachesim::profile_stack_distances(
          cp, 1, trace::TraceMode::kRuns, opts.governor);
      if (prof.completeness == Completeness::kComplete) {
        cachesim::SimResult r = prof.result(opts.capacity);
        s.misses = static_cast<std::int64_t>(r.misses);
        s.by_site.assign(r.misses_by_site.begin(), r.misses_by_site.end());
        s.simulated = true;
      }
    }
  }
  return s;
}

void finish_advice(Advice& a, const Score& s, std::int64_t baseline) {
  a.predicted_misses = s.misses;
  a.predicted_by_site = s.by_site;
  a.confidence = s.conf;
  a.simulated = s.simulated;
  a.delta = s.misses - baseline;
  a.delta_pct = baseline == 0 ? 0.0
                              : 100.0 * static_cast<double>(a.delta) /
                                    static_cast<double>(baseline);
}

std::string joined(const std::vector<std::string>& vs) {
  std::string out;
  for (const std::string& v : vs) {
    if (!out.empty()) out += ",";
    out += v;
  }
  return out;
}

std::vector<std::string> band_order(const ir::Program& p, ir::NodeId band) {
  std::vector<std::string> out;
  for (const ir::Loop& l : p.band_loops(band)) out.push_back(l.var);
  return out;
}

std::string format_pct(double pct) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", pct);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* engine_name(bool simulated) {
  return simulated ? "profiler" : "model";
}

}  // namespace

AdvisorReport advise(const ir::Program& prog, const sym::Env& env,
                     const AdvisorOptions& opts, const ir::SourceMap* locs) {
  SDLO_CHECK(prog.validated(), "advise requires validate()");
  AdvisorReport report;
  report.capacity = opts.capacity;

  report.dependences = analyze_dependences(prog);
  append_dependence_diagnostics(report.dependences, locs,
                                report.diagnostics);
  sort_diagnostics(report.diagnostics);
  report.reuse = analyze_reuse(prog, &env, opts.line_elems);

  const Score baseline = score_program(prog, env, opts);
  report.baseline_misses = baseline.misses;
  report.baseline_confidence = baseline.conf;
  report.baseline_simulated = baseline.simulated;

  std::set<std::string> taken(prog.variables().begin(),
                              prog.variables().end());

  auto out_of_budget = [&] {
    if (!governor_should_stop(opts.governor)) return false;
    report.completeness = Completeness::kTruncated;
    return true;
  };
  auto capped = [&] {
    if (report.candidates_scored < opts.max_candidates) return false;
    report.candidates_capped = true;
    return true;
  };

  // Interchange candidates: every non-identity permutation of every band
  // with 2..max_band_loops loops, filtered by the direction-vector rule.
  bool stop = false;
  for (const BandSummary& bs : report.dependences.bands) {
    const std::size_t k = bs.loop_vars.size();
    if (k < 2 || k > opts.max_band_loops || stop) continue;
    std::vector<int> perm(k);
    std::iota(perm.begin(), perm.end(), 0);
    while (std::next_permutation(perm.begin(), perm.end())) {
      if (out_of_budget() || capped()) {
        stop = true;
        break;
      }
      if (!interchange_legal(report.dependences, bs.band, perm)) {
        ++report.rejected_illegal;
        continue;
      }
      try {
        Advice a;
        a.kind = AdviceKind::kInterchange;
        a.band = bs.band;
        a.perm = perm;
        a.transformed = ir::interchange(prog, bs.band, perm);
        a.loop_order = band_order(a.transformed, bs.band);
        a.title = "interchange band b" + std::to_string(bs.band) +
                  " to loop order (" + joined(a.loop_order) + ")";
        finish_advice(a, score_program(a.transformed, env, opts),
                      baseline.misses);
        ++report.candidates_scored;
        report.advice.push_back(std::move(a));
      } catch (const Error&) {
        // A candidate the model or transform cannot handle is dropped, not
        // fatal; legality was already established.
      }
    }
  }

  // Tiling candidates: single perfect nests only (tile_nest's contract).
  const std::vector<ir::NodeId>& top = prog.children(ir::Program::kRoot);
  ir::NodeId nest = -1;
  if (opts.try_tiling && top.size() == 1 && !prog.is_statement(top[0]) &&
      !prog.band_loops(top[0]).empty() && prog.children(top[0]).size() == 1 &&
      prog.is_statement(prog.children(top[0])[0]))
    nest = top[0];
  for (std::int64_t tile : nest >= 0 ? opts.tile_sizes
                                     : std::vector<std::int64_t>{}) {
    if (out_of_budget() || capped()) break;
    std::vector<ir::TileSpec> specs;
    std::set<std::string> split;
    sym::Env extra;
    for (const ir::Loop& l : prog.band_loops(nest)) {
      std::optional<std::int64_t> ext = sym::try_evaluate(l.extent, env);
      if (!ext || *ext <= tile || *ext % tile != 0) continue;
      const std::string sym = "T_" + l.var;
      if (taken.count(l.var + "T") || taken.count(l.var + "I") ||
          env.count(sym))
        continue;
      specs.push_back({l.var, sym});
      split.insert(l.var);
      extra[sym] = tile;
    }
    if (specs.empty()) continue;
    if (!tiling_legal(report.dependences, nest, split)) {
      ++report.rejected_illegal;
      continue;
    }
    try {
      ir::GalleryProgram g;
      g.prog = prog;
      Advice a;
      a.kind = AdviceKind::kTile;
      a.band = nest;
      a.specs = specs;
      a.tile = tile;
      a.env_extra = extra;
      a.transformed = ir::tile_nest(g, specs).prog;
      a.loop_order = band_order(a.transformed, nest);
      std::vector<std::string> tiled_vars;
      for (const ir::TileSpec& s : specs) tiled_vars.push_back(s.var);
      a.title = "tile loops (" + joined(tiled_vars) + ") at size " +
                std::to_string(tile);
      sym::Env full = env;
      for (const auto& [k, v] : extra) full[k] = v;
      finish_advice(a, score_program(a.transformed, full, opts),
                    baseline.misses);
      ++report.candidates_scored;
      report.advice.push_back(std::move(a));
    } catch (const Error&) {
    }
  }

  std::stable_sort(report.advice.begin(), report.advice.end(),
                   [](const Advice& a, const Advice& b) {
                     return a.predicted_misses != b.predicted_misses
                                ? a.predicted_misses < b.predicted_misses
                                : a.title < b.title;
                   });

  // Fuse the parallelization findings: false-sharing padding advice and
  // privatization requirements, deduplicated per (loop, array).
  std::set<std::string> seen;
  for (const LoopParallelism& lp :
       analyze_parallel_safety(prog, &env, opts.line_elems)) {
    for (const FalseSharingHazard& h : lp.hazards) {
      if (!seen.insert("202|" + lp.var + "|" + h.array).second) continue;
      report.notes.push_back(
          {kPS202FalseSharing,
           "pad or align array '" + h.array + "': parallelizing loop '" +
               lp.var + "' writes elements only " + std::to_string(h.stride) +
               " apart within " + std::to_string(h.line_elems) +
               "-element lines"});
    }
    if (!lp.doall_safe) continue;
    for (const std::string& a : lp.privatized) {
      if (!seen.insert("204|" + lp.var + "|" + a).second) continue;
      report.notes.push_back(
          {kPS204PrivatizationRequired,
           "privatize array '" + a + "' per thread when parallelizing loop '" +
               lp.var + "'"});
    }
  }
  return report;
}

void render_advice_text(const AdvisorReport& report, std::ostream& os,
                        const std::string& source_name, std::size_t top) {
  os << "advisory report: capacity " << report.capacity << " elements\n";
  os << "baseline: " << report.baseline_misses << " predicted misses ("
     << engine_name(report.baseline_simulated) << ", "
     << model::confidence_name(report.baseline_confidence) << ")\n";

  os << "\nper-site locality (innermost-loop verdict):\n";
  for (const SiteReuse& sr : report.reuse.sites) {
    os << "  " << sr.stmt_label << "[" << sr.site.access << "] " << sr.array
       << (sr.mode == ir::AccessMode::kWrite ? " write" : " read") << ": "
       << locality_name(sr.innermost)
       << (sr.is_group_leader ? "" : " (group reuse from leader)") << "\n";
  }

  if (!report.diagnostics.empty()) {
    os << "\ndependences:\n";
    for (const Diagnostic& d : report.diagnostics)
      os << "  " << to_text(d, source_name) << "\n";
  }

  os << "\nrecommendations:\n";
  if (report.advice.empty()) os << "  (no legal candidate scored)\n";
  std::size_t shown = 0;
  for (const Advice& a : report.advice) {
    if (top && shown == top) break;
    os << "  " << ++shown << ". " << a.title << ": " << a.predicted_misses
       << " predicted misses (" << format_pct(a.delta_pct) << ", "
       << engine_name(a.simulated) << " "
       << model::confidence_name(a.confidence) << ")\n";
  }
  if (report.rejected_illegal)
    os << "  (" << report.rejected_illegal
       << " candidate(s) rejected as illegal by dependence analysis)\n";
  if (report.candidates_capped) os << "  (candidate enumeration capped)\n";
  if (report.completeness == Completeness::kTruncated)
    os << "  (truncated by resource budget)\n";

  if (!report.notes.empty()) {
    os << "\nparallelization notes:\n";
    for (const AdvisorNote& n : report.notes)
      os << "  " << n.id << ": " << n.message << "\n";
  }
}

void render_advice_json(const AdvisorReport& report, std::ostream& os,
                        std::size_t top) {
  os << "{\n";
  os << "  \"version\": \"" << kVersionNumber << "\",\n";
  os << "  \"capacity\": " << report.capacity << ",\n";
  os << "  \"complete\": "
     << (report.completeness == Completeness::kComplete ? "true" : "false")
     << ",\n";
  os << "  \"baseline\": {\"misses\": " << report.baseline_misses
     << ", \"confidence\": \""
     << model::confidence_name(report.baseline_confidence)
     << "\", \"engine\": \"" << engine_name(report.baseline_simulated)
     << "\"},\n";
  os << "  \"rejected_illegal\": " << report.rejected_illegal << ",\n";
  os << "  \"advice\": [";
  std::size_t shown = 0;
  for (const Advice& a : report.advice) {
    if (top && shown == top) break;
    if (shown) os << ",";
    ++shown;
    char pct[32];
    std::snprintf(pct, sizeof pct, "%.2f", a.delta_pct);
    os << "\n    {\"kind\": \""
       << (a.kind == AdviceKind::kInterchange ? "interchange" : "tile")
       << "\", \"title\": \"" << json_escape(a.title) << "\", \"band\": "
       << a.band << ", \"order\": [";
    for (std::size_t i = 0; i < a.loop_order.size(); ++i)
      os << (i ? ", " : "") << "\"" << json_escape(a.loop_order[i]) << "\"";
    os << "]";
    if (a.kind == AdviceKind::kTile) os << ", \"tile\": " << a.tile;
    os << ", \"predicted_misses\": " << a.predicted_misses
       << ", \"delta\": " << a.delta << ", \"delta_pct\": " << pct
       << ", \"confidence\": \"" << model::confidence_name(a.confidence)
       << "\", \"engine\": \"" << engine_name(a.simulated) << "\"}";
  }
  os << (shown ? "\n  " : "") << "],\n";
  os << "  \"notes\": [";
  for (std::size_t i = 0; i < report.notes.size(); ++i) {
    if (i) os << ",";
    os << "\n    {\"id\": \"" << report.notes[i].id << "\", \"message\": \""
       << json_escape(report.notes[i].message) << "\"}";
  }
  os << (report.notes.empty() ? "" : "\n  ") << "]\n";
  os << "}\n";
}

}  // namespace sdlo::analysis
