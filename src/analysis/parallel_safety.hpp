// Pass 3: parallelization-safety analysis for §7 (IDs PS201–PS204).
//
// The paper's SMP estimates assume the partitioned outer loop is
// synchronization-free: iterations can be block-distributed over processors
// with no cross-iteration dependence. On the constrained class this is
// decidable per band loop `v` from subscript structure alone. For every
// array A written somewhere in v's band subtree:
//
//   * v ∈ array_vars(A): distinct v iterations touch disjoint elements
//     (subscripts are injective mixed-radix compositions of full-range
//     loops), so A never carries a dependence over v;
//   * A is read-only in the subtree: trivially safe;
//   * A is *kill-first* in the subtree — the first reference to A in program
//     order within the subtree is a write whose subscript vars all lie
//     inside the subtree. Then every element read in an iteration was
//     written earlier in the same iteration, so giving each processor a
//     private copy removes all sharing (PS204; this is exactly the TCE tile
//     buffer T of two_index_tiled);
//   * otherwise v carries a dependence through A (PS201) — e.g. the
//     accumulation C[i,j] += over k in matmul carries over j and k.
//
// A DOALL-safe loop may still false-share cache lines: if the mixed-radix
// weight of v's digit in a written array is smaller than the line size,
// consecutive v iterations write the same line (PS202).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/program.hpp"
#include "symbolic/expr.hpp"

namespace sdlo::analysis {

/// A cache-line sharing hazard of one DOALL-safe loop: adjacent iterations
/// of `var` write elements of `array` only `stride` elements apart, closer
/// than the `line_elems`-element line.
struct FalseSharingHazard {
  std::string array;
  std::int64_t stride = 0;
  std::int64_t line_elems = 0;
};

/// Safety verdict for one band loop.
struct LoopParallelism {
  std::string var;
  ir::NodeId band = 0;
  int index_in_band = 0;
  bool top_level = false;  ///< declared by a band whose parent is the root
  bool doall_safe = false;
  /// Arrays through which the loop carries a cross-iteration dependence
  /// (non-empty exactly when !doall_safe).
  std::vector<std::string> carried;
  /// Kill-first arrays that must be privatized per processor (PS204).
  std::vector<std::string> privatized;
  /// Write-side false-sharing hazards (computed only when an environment
  /// and a line size were supplied).
  std::vector<FalseSharingHazard> hazards;
};

/// Analyzes every band loop of a validated program, in path order of a
/// pre-order walk. With a non-null `env` and `line_elems > 1`, mixed-radix
/// write strides are evaluated to flag false sharing.
std::vector<LoopParallelism> analyze_parallel_safety(
    const ir::Program& prog, const sym::Env* env = nullptr,
    std::int64_t line_elems = 0);

/// Gate used by parallel::estimate_smp: verifies that block-partitioning the
/// symbolic bound `bound` (e.g. "NN") is synchronization-free — every
/// top-level subtree that writes an array must expose an outermost loop
/// whose extent depends on `bound` and that loop must be DOALL-safe.
/// Throws UnsupportedProgram naming the carried arrays otherwise.
void require_partition_safety(const ir::Program& prog,
                              const std::string& bound);

}  // namespace sdlo::analysis
