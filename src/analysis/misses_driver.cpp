#include "analysis/misses_driver.hpp"

#include <cstdio>
#include <string>

#include "cachesim/sweep.hpp"
#include "ir/printer.hpp"
#include "support/cli.hpp"
#include "support/string_util.hpp"

namespace sdlo::analysis {

namespace {

const char* json_completeness(Completeness c) {
  return c == Completeness::kTruncated ? "truncated" : "complete";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

int MissesOutcome::exit_code() const {
  return to_int(truncated() ? ExitCode::kTruncated : ExitCode::kOk);
}

MissesOutcome run_misses(const ir::Program& prog, const sym::Env& env,
                         const MissesOptions& opts, const Governor* gov) {
  MissesOutcome oc;
  const auto an = model::analyze(prog);
  oc.pred = model::predict_misses(an, env, opts.capacity);
  if (opts.simulate) {
    trace::CompiledProgram cp(prog, env);
    oc.sim = cachesim::simulate_sweep(
        cp, {{opts.capacity, 1, 0, cachesim::Replacement::kLru}}, nullptr,
        opts.mode, gov)[0];
    oc.simulated = true;
  }
  return oc;
}

void render_misses_json(const MissesOutcome& oc, std::ostream& os) {
  os << "{\"version\":\"" << kVersionNumber << "\""
     << ",\"capacity\":" << oc.pred.capacity
     << ",\"accesses\":" << oc.pred.total_accesses
     << ",\"predicted_misses\":" << oc.pred.misses << ",\"confidence\":\""
     << model::confidence_name(oc.pred.confidence) << "\"";
  if (oc.simulated) {
    os << ",\"simulated_misses\":" << oc.sim.misses
       << ",\"simulated_accesses\":" << oc.sim.accesses
       << ",\"completeness\":\"" << json_completeness(oc.sim.completeness)
       << "\"";
  }
  os << "}\n";
}

void render_misses_text(const MissesOutcome& oc, std::ostream& os) {
  os << "capacity " << oc.pred.capacity << " elements\n"
     << "accesses  " << with_commas(oc.pred.total_accesses) << "\n"
     << "predicted " << with_commas(oc.pred.misses) << " misses ("
     << format_double(100.0 * oc.pred.miss_ratio(), 3) << "%)\n"
     << "confidence " << model::confidence_name(oc.pred.confidence)
     << (oc.pred.confidence == model::Confidence::kApproximate
             ? " (interpolated partitions; see sdlo lint)"
             : "")
     << "\n";
  if (oc.simulated) {
    os << "simulated "
       << with_commas(static_cast<std::int64_t>(oc.sim.misses))
       << " misses — ";
    if (oc.truncated()) {
      os << "truncated by budget after "
         << with_commas(static_cast<std::int64_t>(oc.sim.accesses))
         << " accesses (exact lower bound; no comparison)\n";
    } else {
      os << (oc.sim.misses == static_cast<std::uint64_t>(oc.pred.misses)
                 ? "exact match"
                 : "MISMATCH")
         << "\n";
    }
  }
}

void render_analyze_json(const ir::Program& prog, std::ostream& os,
                         const Governor* gov) {
  if (gov != nullptr) gov->check("analyze");
  const auto an = model::analyze(prog);
  if (gov != nullptr) gov->check("analyze");
  os << "{\"version\":\"" << kVersionNumber << "\",\"program\":\""
     << json_escape(ir::to_code_string(prog)) << "\",\"rows\":[";
  bool first = true;
  for (const auto& row : model::symbolic_report(an)) {
    os << (first ? "" : ",") << "{\"partition\":\""
       << json_escape(row.description) << "\",\"references\":\""
       << json_escape(sym::to_string(row.count)) << "\",\"distance\":\""
       << (row.infinite ? "inf" : json_escape(sym::to_string(row.total)))
       << "\"}";
    first = false;
  }
  os << "]}\n";
}

}  // namespace sdlo::analysis
