// Engine selection and fallback policy for the `sdlo sweep` verb.
//
// Two engines answer the miss-vs-capacity question:
//
//   simulated  — trace-walking: the exact stack-distance profiler
//                (cachesim/profile_stack_distances), O(trace);
//   symbolic   — analytic: model::symbolic_sweep evaluates the partition
//                machinery's stack-distance histogram, O(model), no trace
//                walk — but only *exact* on the model-exact subset.
//
// run_sweep() encodes the trust policy the oracle battery underwrites: the
// symbolic engine answers only when its Confidence verdict is kExact (and
// the request is at element granularity — the analytic model has no line
// dimension); anything weaker falls back to simulation, and the outcome
// records which engine actually answered plus why the fallback happened,
// so scripts reading --json can detect a silent fallback (the AP105
// diagnostic of `sdlo lint` names the offending sites). A Governor
// truncation inside either engine is NOT a fallback — re-running the walk
// would blow the same deadline — and surfaces instead as a best-so-far
// partial curve marked truncated (exit code 2).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "cachesim/results.hpp"
#include "model/analyzer.hpp"
#include "model/symbolic_sweep.hpp"
#include "support/governor.hpp"
#include "trace/walker.hpp"

namespace sdlo::analysis {

/// Which engine the caller asked for.
enum class SweepEngine : std::uint8_t { kSimulate, kSymbolic };

/// Parses "simulate"/"simulated"/"symbolic" (throws sdlo::Error otherwise).
SweepEngine parse_sweep_engine(const std::string& name);

struct SweepDriverOptions {
  SweepEngine engine = SweepEngine::kSimulate;
  /// Line size in elements (power of two). The symbolic engine only
  /// answers line_elems == 1 (the paper's element model).
  std::int64_t line_elems = 1;
  /// Include the per-site miss breakdown in renderings.
  bool sites = false;
  /// Trace delivery for the simulated engine.
  trace::TraceMode mode = trace::TraceMode::kRuns;
  model::SymbolicSweepOptions symbolic;
};

/// What a sweep produced, annotated with which engine produced it.
struct SweepOutcome {
  /// "symbolic" or "simulated" — the engine that actually answered, which
  /// under --engine symbolic may be the fallback.
  std::string engine = "simulated";
  bool fell_back = false;
  std::string fallback_reason;  ///< empty unless fell_back
  /// Confidence of the symbolic attempt (kExact when it answered or was
  /// never tried).
  model::Confidence confidence = model::Confidence::kExact;
  Completeness completeness = Completeness::kComplete;
  std::uint64_t accesses = 0;
  std::int64_t line_elems = 1;
  /// The power-of-two capacity ladder, one row per capacity.
  std::vector<std::int64_t> capacities;
  std::vector<cachesim::SimResult> rows;
  /// Capacities where the analytic curve changes (symbolic engine only).
  std::vector<std::int64_t> crossings;

  bool truncated() const {
    return completeness == Completeness::kTruncated;
  }
  /// 2 (ExitCode::kTruncated) for a partial curve, else 0.
  int exit_code() const;
};

/// The sweep verb's power-of-two capacity ladder: line, 2*line, ... up to
/// twice the address space (so the last row is always fully resident).
std::vector<std::int64_t> sweep_ladder(std::int64_t line,
                                       std::uint64_t space);

/// Runs the requested engine with the fallback policy above. `gov` governs
/// whichever engine runs (the symbolic evaluation loop polls it exactly
/// like the trace walk does).
SweepOutcome run_sweep(const ir::Program& prog, const sym::Env& env,
                       const SweepDriverOptions& opts = {},
                       const Governor* gov = nullptr);

/// Renders the outcome as the human table `sdlo sweep` prints.
void render_sweep_text(const SweepOutcome& oc, std::ostream& os);

/// Renders the stable JSON schema:
///   {"engine":..., "fell_back":..., "confidence":..., "line_elems":...,
///    "accesses":..., "completeness":..., "rows":[{"capacity":...,
///    "misses":...[, "misses_by_site":[...]]}]}
/// plus "fallback_reason" when fell_back and "crossings" for the symbolic
/// engine. `sites` matches SweepDriverOptions::sites.
void render_sweep_json(const SweepOutcome& oc, std::ostream& os, bool sites);

}  // namespace sdlo::analysis
