#include "analysis/diagnostics.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace sdlo::analysis {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "error";
}

std::string to_text(const Diagnostic& d, const std::string& source_name) {
  std::ostringstream os;
  if (!source_name.empty()) os << source_name << ":";
  if (d.loc.known()) os << d.loc.line << ":" << d.loc.column << ":";
  if (!source_name.empty() || d.loc.known()) os << " ";
  os << severity_name(d.severity) << ": " << d.id << ": " << d.message;
  if (!d.object.empty()) os << " [" << d.object << "]";
  return os.str();
}

void sort_diagnostics(std::vector<Diagnostic>& ds) {
  std::stable_sort(ds.begin(), ds.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::tie(a.loc.line, a.loc.column, a.id,
                                     a.object) <
                            std::tie(b.loc.line, b.loc.column, b.id,
                                     b.object);
                   });
}

std::size_t count_severity(const std::vector<Diagnostic>& ds, Severity s) {
  return static_cast<std::size_t>(
      std::count_if(ds.begin(), ds.end(),
                    [s](const Diagnostic& d) { return d.severity == s; }));
}

}  // namespace sdlo::analysis
