// Pass 2: model-applicability checker (DESIGN.md §10, IDs AP101–AP104).
//
// The §4–§5 distance algebra is exact on the constrained class, but three
// mechanisms degrade a *particular* prediction from closed-form exact to
// approximate, and one (the auxiliary-branch sibling analysis of Figs. 4–5)
// is exact yet worth surfacing because it is the imperfect-nest case the
// paper adds over classic perfect-nest models. This pass classifies every
// access site:
//
//   * varying      — the partition's stack distance depends on the instance
//                    coordinates (§5.2), so a numeric prediction must
//                    enumerate coordinates rather than evaluate one closed
//                    form (AP101, note);
//   * inexact      — the symbolic union of window boxes exceeded the
//                    inclusion–exclusion budget and fell back to an
//                    over-approximating sum, so Table-1 style symbolic rows
//                    for this site are upper bounds (AP102, warning);
//   * interpolated — under the supplied environment and capacity the
//                    enumeration limit was exceeded while the depth range
//                    straddles the capacity, so predict_misses used
//                    statistical interpolation (AP103, warning);
//   * sibling      — reuse crosses sibling subtrees (auxiliary branches of
//                    Figs. 4–5; AP104, note);
//   * sweep-inexact — under the supplied environment the analytic capacity
//                    sweep (model/symbolic_sweep.hpp) cannot resolve the
//                    site's partitions exactly, so `sdlo sweep --engine
//                    symbolic` falls back to simulation for this program
//                    (AP105, warning).
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "ir/program.hpp"
#include "model/analyzer.hpp"
#include "symbolic/expr.hpp"

namespace sdlo::analysis {

/// Classification of one access site (aggregated over its partitions).
struct SiteApplicability {
  ir::AccessSite site;
  std::int32_t index = 0;  ///< global site index (model::site_index)
  std::string array;
  std::string statement;   ///< enclosing statement label
  bool varying = false;
  bool exact_symbolic = true;   ///< false when any union was inexact
  bool sibling_case = false;
  bool interpolated = false;    ///< only ever true when env+capacity given
  bool sweep_inexact = false;   ///< only ever true when an env was given
};

/// Whole-program applicability verdict.
struct ApplicabilityResult {
  std::vector<SiteApplicability> sites;  ///< program order
  /// True when every site's symbolic stack distance is exact (no AP102).
  bool symbolic_exact = true;
  /// Numeric confidence under the supplied env/capacity; kExact when no
  /// env/capacity was supplied (nothing was interpolated).
  model::Confidence numeric = model::Confidence::kExact;
  /// Confidence of the analytic capacity sweep under the supplied env;
  /// kExact when no env was supplied. kApproximate means `sdlo sweep
  /// --engine symbolic` falls back to simulation for this program.
  model::Confidence sweep = model::Confidence::kExact;
};

/// Classifies every access site of the analyzed program. When `env` is
/// non-null, additionally evaluates the analytic capacity sweep to detect
/// sweep-inexact sites (AP105); when `capacity` is also positive, runs the
/// concrete prediction to detect interpolation fallbacks (AP103).
/// `max_union_boxes` bounds the inclusion–exclusion expansion of
/// model::symbolic_union (2^boxes intersections); windows that exceed it
/// are classified inexact (AP102).
ApplicabilityResult check_applicability(
    const model::Analysis& an, const sym::Env* env, std::int64_t capacity,
    const model::PredictOptions& popts = {},
    std::size_t max_union_boxes = 12);

}  // namespace sdlo::analysis
