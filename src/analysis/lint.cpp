#include "analysis/lint.hpp"

#include <cstdio>
#include <sstream>
#include <utility>

#include "analysis/verifier.hpp"
#include "support/cli.hpp"

namespace sdlo::analysis {

void append_applicability_diagnostics(const ApplicabilityResult& ap,
                                      const ir::SourceMap* locs,
                                      std::int64_t capacity,
                                      std::vector<Diagnostic>& out) {
  const auto loc_of = [&](const ir::AccessSite& s) {
    return locs != nullptr ? locs->access_loc(s) : SourceLoc{};
  };
  for (const auto& site : ap.sites) {
    const std::string where = site.array + "@" + site.statement;
    if (site.varying) {
      out.push_back(Diagnostic{
          kAP101VaryingDistance, Severity::kNote, loc_of(site.site),
          site.array,
          "stack distance of " + where +
              " varies with the instance; the prediction enumerates "
              "coordinates (§5.2) instead of one closed form"});
    }
    if (!site.exact_symbolic) {
      out.push_back(Diagnostic{
          kAP102InexactUnion, Severity::kWarning, loc_of(site.site),
          site.array,
          "symbolic union of the reuse window of " + where +
              " exceeded the inclusion-exclusion budget; its symbolic "
              "stack distance is an over-approximation"});
    }
    if (site.interpolated) {
      out.push_back(Diagnostic{
          kAP103InterpolatedPrediction, Severity::kWarning, loc_of(site.site),
          site.array,
          "prediction for " + where + " at capacity " +
              std::to_string(capacity) +
              " exceeded the enumeration limit while straddling the "
              "capacity; misses were interpolated statistically"});
    }
    if (site.sweep_inexact) {
      out.push_back(Diagnostic{
          kAP105SweepInexact, Severity::kWarning, loc_of(site.site),
          site.array,
          "analytic capacity sweep for " + where +
              " cannot resolve all partitions exactly under this "
              "environment; 'sdlo sweep --engine symbolic' falls back to "
              "simulation"});
    }
    if (site.sibling_case) {
      out.push_back(Diagnostic{
          kAP104SiblingReuse, Severity::kNote, loc_of(site.site), site.array,
          "reuse of " + where +
              " reaches across sibling subtrees (auxiliary-branch analysis "
              "of Figs. 4-5)"});
    }
  }
}

namespace {

void emit_parallel_diags(const std::vector<LoopParallelism>& loops,
                         const ir::SourceMap* locs,
                         std::vector<Diagnostic>& out) {
  bool any_safe = false;
  for (const auto& lp : loops) {
    const SourceLoc at =
        locs != nullptr ? locs->node_loc(lp.band) : SourceLoc{};
    if (!lp.doall_safe) {
      std::string arrays;
      for (const auto& a : lp.carried) {
        arrays += (arrays.empty() ? "" : ", ") + a;
      }
      out.push_back(Diagnostic{
          kPS201CarriedDependence, Severity::kNote, at, lp.var,
          "loop '" + lp.var + "' carries a cross-iteration dependence "
              "through " + arrays + "; not DOALL-parallelizable"});
    } else {
      any_safe = true;
      if (!lp.privatized.empty()) {
        std::string arrays;
        for (const auto& a : lp.privatized) {
          arrays += (arrays.empty() ? "" : ", ") + a;
        }
        out.push_back(Diagnostic{
            kPS204PrivatizationRequired, Severity::kNote, at, lp.var,
            "DOALL execution of loop '" + lp.var +
                "' requires privatizing kill-first array(s) " + arrays});
      }
      for (const auto& h : lp.hazards) {
        out.push_back(Diagnostic{
            kPS202FalseSharing, Severity::kNote, at, lp.var,
            "adjacent iterations of DOALL loop '" + lp.var + "' write '" +
                h.array + "' only " + std::to_string(h.stride) +
                " element(s) apart (< line size " +
                std::to_string(h.line_elems) +
                "); partitioning it false-shares cache lines"});
      }
    }
  }
  if (!loops.empty() && !any_safe) {
    out.push_back(Diagnostic{
        kPS203NoParallelLoop, Severity::kWarning, SourceLoc{}, "program",
        "no band loop is DOALL-safe; the §7 synchronization-free SMP "
        "estimate does not apply to this program"});
  }
}

LintReport lint_validated(const ir::Program& prog, const ir::SourceMap* locs,
                          const LintOptions& opts, LintReport rep) {
  rep.verified = true;
  const model::Analysis an = model::analyze(prog);
  const sym::Env* env = opts.env.empty() ? nullptr : &opts.env;
  rep.applicability = check_applicability(an, env, opts.capacity,
                                          opts.predict, opts.max_union_boxes);
  append_applicability_diagnostics(*rep.applicability, locs, opts.capacity,
                                   rep.diagnostics);
  rep.loops = analyze_parallel_safety(prog, env, opts.line_elems);
  emit_parallel_diags(rep.loops, locs, rep.diagnostics);
  sort_diagnostics(rep.diagnostics);
  return rep;
}

}  // namespace

LintReport lint_program(const ir::Program& prog, const ir::SourceMap* locs,
                        const LintOptions& opts) {
  LintReport rep;
  const sym::Env* env = opts.env.empty() ? nullptr : &opts.env;
  const bool well_formed =
      verify_program(prog, locs, env, rep.diagnostics);
  if (!well_formed) {
    sort_diagnostics(rep.diagnostics);
    return rep;
  }
  if (prog.validated()) {
    return lint_validated(prog, locs, opts, std::move(rep));
  }
  // The verifier proved the tree is in the constrained class; validate a
  // copy to unlock the model queries.
  ir::Program validated = prog;
  validated.validate();
  return lint_validated(validated, locs, opts, std::move(rep));
}

LintReport lint_text(const std::string& text, const LintOptions& opts) {
  ir::ParsedProgram parsed;
  try {
    parsed = ir::parse_program_located(text, /*validate=*/false);
  } catch (const ParseError& e) {
    LintReport rep;
    // The thrown message embeds "line L:C: "; the diagnostic carries the
    // location structurally, so drop the textual prefix.
    std::string msg = e.what();
    if (e.loc.known() && msg.rfind("line ", 0) == 0) {
      const auto colon = msg.find(": ");
      if (colon != std::string::npos) msg = msg.substr(colon + 2);
    }
    rep.diagnostics.push_back(Diagnostic{kWF000ParseError, Severity::kError,
                                         e.loc, "", std::move(msg)});
    return rep;
  }
  return lint_program(parsed.prog, &parsed.locs, opts);
}

// ---------------------------------------------------------------------------
// Renderers
// ---------------------------------------------------------------------------

void render_text(const LintReport& rep, std::ostream& os,
                 const std::string& source_name) {
  for (const auto& d : rep.diagnostics) {
    os << to_text(d, source_name) << "\n";
  }
  if (rep.verified && rep.applicability.has_value()) {
    const auto& ap = *rep.applicability;
    os << "model: symbolic distances "
       << (ap.symbolic_exact ? "exact" : "over-approximated")
       << "; prediction confidence " << model::confidence_name(ap.numeric)
       << "\n";
    os << "parallel:";
    if (rep.loops.empty()) {
      os << " (no loops)";
    }
    for (const auto& lp : rep.loops) {
      os << " " << lp.var << "=";
      if (!lp.doall_safe) {
        os << "serial";
      } else if (!lp.privatized.empty()) {
        os << "doall+private";
      } else {
        os << "doall";
      }
    }
    os << "\n";
  }
  os << rep.num_errors() << " error(s), " << rep.num_warnings()
     << " warning(s), " << rep.num_notes() << " note(s)\n";
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* bool_str(bool b) { return b ? "true" : "false"; }

}  // namespace

void render_json(const LintReport& rep, std::ostream& os) {
  os << "{\n";
  os << "  \"version\": \"" << kVersionNumber << "\",\n";
  os << "  \"ok\": " << bool_str(rep.ok()) << ",\n";
  os << "  \"clean\": " << bool_str(rep.clean()) << ",\n";
  os << "  \"counts\": {\"errors\": " << rep.num_errors()
     << ", \"warnings\": " << rep.num_warnings()
     << ", \"notes\": " << rep.num_notes() << "},\n";
  os << "  \"diagnostics\": [";
  for (std::size_t i = 0; i < rep.diagnostics.size(); ++i) {
    const Diagnostic& d = rep.diagnostics[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"id\": \"" << d.id << "\", \"severity\": \""
       << severity_name(d.severity) << "\", \"line\": " << d.loc.line
       << ", \"column\": " << d.loc.column << ", \"object\": \""
       << json_escape(d.object) << "\", \"message\": \""
       << json_escape(d.message) << "\"}";
  }
  os << (rep.diagnostics.empty() ? "],\n" : "\n  ],\n");
  if (rep.verified && rep.applicability.has_value()) {
    const auto& ap = *rep.applicability;
    os << "  \"model\": {\"symbolic_exact\": " << bool_str(ap.symbolic_exact)
       << ", \"confidence\": \"" << model::confidence_name(ap.numeric)
       << "\", \"sites\": [";
    for (std::size_t i = 0; i < ap.sites.size(); ++i) {
      const auto& s = ap.sites[i];
      os << (i == 0 ? "\n" : ",\n");
      os << "    {\"index\": " << s.index << ", \"statement\": \""
         << json_escape(s.statement) << "\", \"array\": \""
         << json_escape(s.array) << "\", \"varying\": "
         << bool_str(s.varying) << ", \"exact_symbolic\": "
         << bool_str(s.exact_symbolic) << ", \"sibling\": "
         << bool_str(s.sibling_case) << ", \"interpolated\": "
         << bool_str(s.interpolated) << "}";
    }
    os << (ap.sites.empty() ? "]},\n" : "\n  ]},\n");
    os << "  \"parallel\": {\"loops\": [";
    for (std::size_t i = 0; i < rep.loops.size(); ++i) {
      const auto& lp = rep.loops[i];
      os << (i == 0 ? "\n" : ",\n");
      os << "    {\"var\": \"" << json_escape(lp.var)
         << "\", \"top_level\": " << bool_str(lp.top_level)
         << ", \"doall_safe\": " << bool_str(lp.doall_safe)
         << ", \"carried\": [";
      for (std::size_t k = 0; k < lp.carried.size(); ++k) {
        os << (k == 0 ? "" : ", ") << "\"" << json_escape(lp.carried[k])
           << "\"";
      }
      os << "], \"privatized\": [";
      for (std::size_t k = 0; k < lp.privatized.size(); ++k) {
        os << (k == 0 ? "" : ", ") << "\"" << json_escape(lp.privatized[k])
           << "\"";
      }
      os << "], \"false_sharing\": [";
      for (std::size_t k = 0; k < lp.hazards.size(); ++k) {
        const auto& h = lp.hazards[k];
        os << (k == 0 ? "" : ", ") << "{\"array\": \""
           << json_escape(h.array) << "\", \"stride\": " << h.stride
           << ", \"line\": " << h.line_elems << "}";
      }
      os << "]}";
    }
    os << (rep.loops.empty() ? "]}\n" : "\n  ]}\n");
  } else {
    os << "  \"model\": null,\n";
    os << "  \"parallel\": null\n";
  }
  os << "}\n";
}

}  // namespace sdlo::analysis
