#include "analysis/applicability.hpp"

#include <map>
#include <set>

#include "model/distance.hpp"
#include "model/symbolic_sweep.hpp"

namespace sdlo::analysis {

ApplicabilityResult check_applicability(const model::Analysis& an,
                                        const sym::Env* env,
                                        std::int64_t capacity,
                                        const model::PredictOptions& popts,
                                        std::size_t max_union_boxes) {
  const ir::Program& prog = *an.prog;
  ApplicabilityResult out;

  // One entry per access site, in program (trace) order.
  for (ir::NodeId s : prog.statements_in_order()) {
    const ir::Statement& stmt = prog.statement(s);
    for (std::size_t a = 0; a < stmt.accesses.size(); ++a) {
      SiteApplicability site;
      site.site = ir::AccessSite{s, static_cast<int>(a)};
      site.index = model::site_index(prog, site.site);
      site.array = stmt.accesses[a].array;
      site.statement = stmt.label;
      out.sites.push_back(std::move(site));
    }
  }
  const auto site_at = [&](const ir::AccessSite& s) -> SiteApplicability& {
    return out.sites[static_cast<std::size_t>(model::site_index(prog, s))];
  };

  // Symbolic classification, per partition.
  for (const auto& pa : an.parts) {
    if (pa.part.divergence == model::Divergence::kCold) continue;
    SiteApplicability& site = site_at(pa.part.target);
    if (pa.part.divergence == model::Divergence::kSibling) {
      site.sibling_case = true;
    }
    std::set<std::string> coord_syms;
    for (const auto& c : pa.coords) coord_syms.insert(c.first);
    sym::Expr total;
    for (const auto& ab : pa.boxes) {
      bool exact = true;
      total = total + model::symbolic_union(ab.second, an.symtab, &exact,
                                            max_union_boxes);
      if (!exact) {
        site.exact_symbolic = false;
        out.symbolic_exact = false;
      }
    }
    if (!coord_syms.empty()) {
      for (const auto& sym_name : sym::symbols_of(total)) {
        if (coord_syms.count(sym_name) != 0) {
          site.varying = true;
          break;
        }
      }
    }
  }

  // Concrete classification: which partitions the numeric predictor had to
  // interpolate under this environment and capacity.
  if (env != nullptr && capacity > 0) {
    const model::MissPrediction pred =
        model::predict_misses(an, *env, capacity, popts);
    out.numeric = pred.confidence;
    for (const auto& oc : pred.outcomes) {
      if (!oc.approximated) continue;
      site_at(an.parts[oc.part_index].part.target).interpolated = true;
    }
  }

  // Analytic-sweep classification: which partitions the symbolic capacity
  // sweep cannot resolve exactly under this environment (capacity-free —
  // the sweep answers every capacity at once or none).
  if (env != nullptr) {
    model::SymbolicSweepOptions sopts;
    sopts.enum_limit = popts.enum_limit;
    sopts.probe_samples = popts.probe_samples;
    const model::SymbolicSweep sweep = model::symbolic_sweep(an, *env, sopts);
    out.sweep = sweep.confidence;
    for (const auto& pc : sweep.parts) {
      if (pc.exact) continue;
      site_at(an.parts[pc.part_index].part.target).sweep_inexact = true;
    }
  }
  return out;
}

}  // namespace sdlo::analysis
