// Static reuse analysis per access site (DESIGN.md §15).
//
// On the constrained class every subscript digit is a bare loop variable, so
// the classic reuse vectors collapse to a per-loop stride table: the stride
// of loop v at a reference is the mixed-radix weight of v's digit (product
// of the extents of all later digits, row-major over the whole array), or 0
// when v does not appear — the reference is invariant along v and carries
// self-temporal reuse. Unit stride (the innermost digit) carries
// self-spatial reuse; with a line size, any stride below `line_elems` does.
// Group reuse needs no offset analysis here: WF004 forces all references to
// one array to share a subscript structure, so every non-leading reference
// reuses the leader's element whenever the shared variables agree.
//
// The per-site verdict classifies the *innermost* enclosing loop — the one
// whose reuse is actually realized at small cache capacities — as temporal,
// spatial, or none.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/program.hpp"
#include "symbolic/expr.hpp"

namespace sdlo::analysis {

/// Reuse classification of one enclosing loop at one access site.
struct LoopReuse {
  std::string var;
  ir::NodeId band = 0;
  int index_in_band = 0;
  /// True when the reference does not use `var`: successive iterations
  /// touch the same element (self-temporal reuse carried by this loop).
  bool temporal = false;
  /// Elements advanced per iteration of this loop (mixed-radix digit
  /// weight); the zero expression when temporal.
  sym::Expr stride;
  /// `stride` under the provided Env, when it evaluates.
  std::optional<std::int64_t> stride_value;
  /// True when the stride is known to stay within one cache line
  /// (stride_value < line_elems; unit stride when no line size is given).
  bool spatial = false;
};

/// Per-site locality verdict for the innermost enclosing loop.
enum class LocalityClass : std::uint8_t { kTemporal, kSpatial, kNone };

/// "temporal" / "spatial" / "none".
const char* locality_name(LocalityClass c);

/// Reuse summary of one access site.
struct SiteReuse {
  ir::AccessSite site;
  std::string array;
  std::string stmt_label;
  ir::AccessMode mode = ir::AccessMode::kRead;
  /// One entry per enclosing loop, outermost first.
  std::vector<LoopReuse> loops;
  /// First program-order reference to the same array; group reuse flows
  /// leader -> follower whenever the shared subscript variables agree.
  ir::AccessSite group_leader;
  bool is_group_leader = false;
  /// Verdict for the innermost enclosing loop (kNone when the statement
  /// has no enclosing loop).
  LocalityClass innermost = LocalityClass::kNone;
};

/// Result of the pass, one entry per access site in program order.
struct ReuseAnalysis {
  std::vector<SiteReuse> sites;
};

/// Runs the reuse pass. `prog` must be validated. `env` (optional) binds
/// symbolic extents so strides evaluate; `line_elems` < 2 means "unit
/// stride only" for the spatial test.
ReuseAnalysis analyze_reuse(const ir::Program& prog,
                            const sym::Env* env = nullptr,
                            std::int64_t line_elems = 0);

}  // namespace sdlo::analysis
