// Transformation advisor: legality-checked, cost-ranked recommendations
// (DESIGN.md §15, `sdlo advise`).
//
// The advisor closes the paper's loop: it enumerates candidate
// transformations with the existing ir::interchange / ir::tile_nest
// rewrites, rejects the ones the dependence pass proves illegal, scores
// every survivor with model::predict_misses at the requested capacity
// (falling back to the exact stack-distance profiler when the model is
// approximate, Governor-threaded like every other driver), fuses in the
// PS202/PS204 parallelization findings, and returns a report ranked by
// predicted miss count. Every recommendation carries its transformed
// program, so callers (and the fuzz legality oracle) can re-verify both
// semantics and the claimed miss counts independently.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/dependence.hpp"
#include "analysis/reuse.hpp"
#include "ir/program.hpp"
#include "ir/transforms.hpp"
#include "model/analyzer.hpp"
#include "support/governor.hpp"

namespace sdlo::analysis {

/// Tuning knobs of the advisor.
struct AdvisorOptions {
  /// Cache capacity (elements) the candidates are scored at.
  std::int64_t capacity = 8192;
  /// Line size (elements) for the false-sharing fusion; < 2 disables it.
  std::int64_t line_elems = 0;
  /// Bands with more loops than this are not permuted (k! candidates).
  std::size_t max_band_loops = 6;
  /// Cap on scored candidates (enumeration stops, report notes the cap).
  std::size_t max_candidates = 64;
  /// Tile sizes tried for single perfect nests (must divide the extent).
  std::vector<std::int64_t> tile_sizes = {4, 8, 16, 32, 64};
  bool try_tiling = true;
  /// Profiler fallback is skipped when the concrete trace exceeds this.
  std::int64_t max_sim_accesses = 4'000'000;
  model::PredictOptions predict;
  /// Optional deadline/memory/cancellation governor; polled between
  /// candidates and threaded through the profiler fallback.
  const Governor* governor = nullptr;
};

enum class AdviceKind : std::uint8_t { kInterchange, kTile };

/// One scored, legality-checked recommendation.
struct Advice {
  AdviceKind kind = AdviceKind::kInterchange;
  std::string title;  ///< e.g. "interchange band b1 to loop order (k,i,j)"
  ir::NodeId band = -1;
  std::vector<int> perm;                ///< kInterchange: perm[new] = old
  std::vector<std::string> loop_order;  ///< resulting outer-to-inner vars
  std::vector<ir::TileSpec> specs;      ///< kTile
  std::int64_t tile = 0;                ///< kTile: tile size
  sym::Env env_extra;                   ///< kTile: tile-size bindings
  /// The transformed program (validated); semantics-preserving by the
  /// legality rules of dependence.hpp.
  ir::Program transformed;
  std::int64_t predicted_misses = 0;
  std::vector<std::int64_t> predicted_by_site;
  std::int64_t delta = 0;  ///< predicted - baseline (negative = better)
  double delta_pct = 0.0;
  model::Confidence confidence = model::Confidence::kExact;
  bool simulated = false;  ///< score came from the profiler fallback
};

/// A fused parallelization finding (PS202 padding / PS204 privatization).
struct AdvisorNote {
  std::string id;
  std::string message;
};

/// The ranked advisory report.
struct AdvisorReport {
  std::int64_t capacity = 0;
  std::int64_t baseline_misses = 0;
  model::Confidence baseline_confidence = model::Confidence::kExact;
  bool baseline_simulated = false;
  /// Scored legal candidates, best (fewest predicted misses) first.
  std::vector<Advice> advice;
  std::vector<AdvisorNote> notes;
  std::size_t rejected_illegal = 0;
  std::size_t candidates_scored = 0;
  bool candidates_capped = false;
  DependenceAnalysis dependences;
  ReuseAnalysis reuse;
  /// DP3xx findings with source positions when a SourceMap was given.
  std::vector<Diagnostic> diagnostics;
  /// kTruncated when the governor stopped candidate scoring early.
  Completeness completeness = Completeness::kComplete;
};

/// Runs the advisor on a validated program under concrete bindings `env`.
AdvisorReport advise(const ir::Program& prog, const sym::Env& env,
                     const AdvisorOptions& opts = {},
                     const ir::SourceMap* locs = nullptr);

/// Human-readable report: locality verdicts, dependences, ranked
/// recommendations with miss deltas, parallelization notes.
void render_advice_text(const AdvisorReport& report, std::ostream& os,
                        const std::string& source_name = "",
                        std::size_t top = 0);

/// Machine-readable report; top-level keys version/capacity/baseline/
/// advice/notes/rejected_illegal/complete.
void render_advice_json(const AdvisorReport& report, std::ostream& os,
                        std::size_t top = 0);

}  // namespace sdlo::analysis
