// Dependence analysis over the constrained IR class (DESIGN.md §15).
//
// WF004 guarantees every reference to an array shares one subscript
// structure, so two accesses touch the same element exactly when the values
// of the array's subscript variables agree. That collapses the classic
// subscript-by-subscript battery to a per-digit decision:
//
//  * scalar arrays (rank 0) fall to the ZIV test: trivially dependent;
//  * a digit whose variable is a *common* loop of both statements is a
//    strong-SIV pair with coefficient 1 and offset 0 — distance 0,
//    direction '=';
//  * a digit whose variable binds to *different* loops in the two statements
//    (the sibling-subtree tile-buffer case) falls to the GCD fallback:
//    v1 - v2 = 0 has gcd 1 | 0 over full rectangular ranges of equal extent
//    (WF003), so the test never disproves the dependence and constrains no
//    common loop.
//
// Every common loop left unconstrained carries direction '*' (any of
// <, =, >). Dependences are directed src-site -> dst-site and classified
// flow (W->R), anti (R->W), output (W->W); input pairs are reuse, not
// dependence, and are handled by reuse.hpp. Findings surface as the DP3xx
// diagnostic family, and two predicates answer the only questions the
// advisor asks: which band permutations and which tile splits preserve
// every dependence.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "ir/parser.hpp"
#include "ir/program.hpp"

namespace sdlo::analysis {

/// Dependence classification by access-mode pair.
enum class DepKind : std::uint8_t { kFlow, kAnti, kOutput };

/// "flow" / "anti" / "output".
const char* dep_kind_name(DepKind k);

/// Direction of one common loop in a dependence: '=' (distance exactly 0,
/// from a strong-SIV digit) or '*' (unconstrained: any of <, =, >).
enum class Direction : std::uint8_t { kEq, kAny };

/// Which subscript test decided a digit (recorded for the diagnostics).
enum class SubscriptTest : std::uint8_t { kZiv, kStrongSiv, kGcd };

/// One common loop of a dependence's statement pair, outermost first.
struct DepLoop {
  std::string var;
  ir::NodeId band = 0;
  int index_in_band = 0;
  Direction dir = Direction::kAny;
  std::int64_t distance = 0;  ///< exact when dir == kEq; meaningless for kAny
};

/// One classified dependence between two access sites of the same array.
struct Dependence {
  DepKind kind = DepKind::kFlow;
  std::string array;
  ir::AccessSite src;  ///< source (the access that must execute first)
  ir::AccessSite dst;
  std::string src_label;  ///< statement labels, for messages
  std::string dst_label;
  /// Common loops of the pair (longest common path prefix), outermost first.
  std::vector<DepLoop> loops;
  /// True when the all-'=' instance is real: src precedes dst in program
  /// order (statement order; access order within one statement).
  bool loop_independent = false;
  /// Index into `loops` of the outermost '*' loop, when any exists. A
  /// dependence with a carrier admits carried instances; one without is
  /// purely loop-independent.
  std::optional<std::size_t> carrier;
  /// Per-digit record of the deciding subscript test: (digit variable,
  /// test). Scalars record a single kZiv entry with an empty variable.
  std::vector<std::pair<std::string, SubscriptTest>> tests;

  bool carried() const { return carrier.has_value(); }
  /// Direction vector rendered as e.g. "(=,*,=)"; "()" when no common loop.
  std::string direction_string() const;
  /// Subscript-test summary, e.g. "siv(i,k)+gcd(jI)" or "ziv".
  std::string tests_string() const;
};

/// Per-band interchange summary.
struct BandSummary {
  ir::NodeId band = 0;
  std::vector<std::string> loop_vars;
  /// True when every dependence has at most one '*' loop in this band, i.e.
  /// all loop permutations of the band are legal.
  bool fully_permutable = true;
  /// Number of dependences with >= 2 '*' loops in this band (the ones that
  /// constrain permutations).
  std::size_t constraining_deps = 0;
};

/// Result of the pass: all dependences plus per-band summaries.
struct DependenceAnalysis {
  std::vector<Dependence> deps;
  std::vector<BandSummary> bands;  ///< bands with >= 1 loop, preorder
};

/// Runs the dependence pass. `prog` must be validated.
DependenceAnalysis analyze_dependences(const ir::Program& prog);

/// True when permuting band `band`'s loops by `perm` (perm[new] = old index)
/// preserves every dependence: for each dependence, the relative order of
/// its '*' loops within the band is unchanged ('=' loops move freely —
/// distance 0 cannot flip lexicographic sign).
bool interchange_legal(const DependenceAnalysis& da, ir::NodeId band,
                       const std::vector<int>& perm);

/// True when strip-mining the loops named in `split_vars` of band `band`
/// (with ir::tile_nest's fixed order: all tile loops outward in original
/// order, then intra/unsplit loops in original order) preserves every
/// dependence. Illegal exactly when some dependence has a '*' loop that is
/// split while another '*' loop of the same dependence is outer to it:
/// hoisting the inner tile digit above the whole intra block can reverse a
/// lexicographically positive (<,>) instance. Conservative when the tile
/// block count is not known to be 1.
bool tiling_legal(const DependenceAnalysis& da, ir::NodeId band,
                  const std::set<std::string>& split_vars);

/// Appends the DP3xx family: DP301/302/303 one note per flow/anti/output
/// dependence, DP304 a note per fully permutable multi-loop band, DP305 a
/// note per interchange-constrained band. Positions come from `locs` when
/// provided (src access site for DP301-303, band node for DP304/305).
void append_dependence_diagnostics(const DependenceAnalysis& da,
                                   const ir::SourceMap* locs,
                                   std::vector<Diagnostic>& out);

}  // namespace sdlo::analysis
