#include "analysis/dependence.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "support/check.hpp"

namespace sdlo::analysis {

namespace {

/// Longest common prefix of the two statements' enclosing loops, matched by
/// (band, index) identity. Two statements share an iteration space exactly
/// up to their lowest common ancestor band.
std::vector<ir::PathLoop> common_loops(const ir::Program& prog, ir::NodeId a,
                                       ir::NodeId b) {
  std::vector<ir::PathLoop> pa = prog.path_loops(a);
  std::vector<ir::PathLoop> pb = prog.path_loops(b);
  std::vector<ir::PathLoop> out;
  for (std::size_t i = 0; i < pa.size() && i < pb.size(); ++i) {
    if (pa[i].band != pb[i].band || pa[i].index_in_band != pb[i].index_in_band)
      break;
    out.push_back(pa[i]);
  }
  return out;
}

std::optional<DepKind> classify(ir::AccessMode src, ir::AccessMode dst) {
  const bool sw = src == ir::AccessMode::kWrite;
  const bool dw = dst == ir::AccessMode::kWrite;
  if (sw && !dw) return DepKind::kFlow;
  if (!sw && dw) return DepKind::kAnti;
  if (sw && dw) return DepKind::kOutput;
  return std::nullopt;  // read-read pairs are reuse, not dependence
}

}  // namespace

const char* dep_kind_name(DepKind k) {
  switch (k) {
    case DepKind::kFlow: return "flow";
    case DepKind::kAnti: return "anti";
    case DepKind::kOutput: return "output";
  }
  return "?";
}

std::string Dependence::direction_string() const {
  std::string out = "(";
  for (std::size_t i = 0; i < loops.size(); ++i) {
    if (i) out += ",";
    out += loops[i].dir == Direction::kEq ? "=" : "*";
  }
  out += ")";
  return out;
}

std::string Dependence::tests_string() const {
  if (tests.size() == 1 && tests[0].second == SubscriptTest::kZiv)
    return "ziv";
  std::string siv, gcd;
  for (const auto& [var, test] : tests) {
    std::string& bucket = test == SubscriptTest::kStrongSiv ? siv : gcd;
    if (!bucket.empty()) bucket += ",";
    bucket += var;
  }
  std::string out;
  if (!siv.empty()) out += "siv(" + siv + ")";
  if (!gcd.empty()) {
    if (!out.empty()) out += "+";
    out += "gcd(" + gcd + ")";
  }
  return out;
}

DependenceAnalysis analyze_dependences(const ir::Program& prog) {
  SDLO_CHECK(prog.validated(), "analyze_dependences requires validate()");
  DependenceAnalysis out;

  // Program-order rank of each statement node, for the loop-independent
  // test (does src textually precede dst?).
  std::map<ir::NodeId, std::size_t> stmt_rank;
  for (std::size_t i = 0; i < prog.statements_in_order().size(); ++i)
    stmt_rank[prog.statements_in_order()[i]] = i;

  for (const std::string& array : prog.arrays()) {
    const std::vector<ir::AccessSite>& refs = prog.refs_to(array);
    const std::vector<std::string>& avars = prog.array_vars(array);
    const bool scalar = prog.array_shape(array).empty();

    for (const ir::AccessSite& src : refs) {
      const ir::Statement& ss = prog.statement(src.stmt);
      for (const ir::AccessSite& dst : refs) {
        std::optional<DepKind> kind =
            classify(ss.accesses[static_cast<std::size_t>(src.access)].mode,
                     prog.statement(dst.stmt)
                         .accesses[static_cast<std::size_t>(dst.access)]
                         .mode);
        if (!kind) continue;

        Dependence d;
        d.kind = *kind;
        d.array = array;
        d.src = src;
        d.dst = dst;
        d.src_label = ss.label;
        d.dst_label = prog.statement(dst.stmt).label;

        // Per-digit subscript tests. WF004 makes element equality the
        // conjunction "every array var agrees", so each digit decides
        // independently: common loop -> strong SIV (coefficient 1, offset
        // 0, distance 0); differently-bound var -> GCD fallback, always
        // satisfiable over full equal-extent ranges, constrains nothing.
        std::vector<ir::PathLoop> common =
            common_loops(prog, src.stmt, dst.stmt);
        std::set<std::string> common_vars;
        for (const ir::PathLoop& pl : common) common_vars.insert(pl.var);
        if (scalar) {
          d.tests.emplace_back("", SubscriptTest::kZiv);
        } else {
          for (const std::string& v : avars)
            d.tests.emplace_back(v, common_vars.count(v)
                                        ? SubscriptTest::kStrongSiv
                                        : SubscriptTest::kGcd);
        }

        std::set<std::string> eq_vars;
        for (const std::string& v : avars)
          if (common_vars.count(v)) eq_vars.insert(v);
        for (const ir::PathLoop& pl : common) {
          DepLoop dl;
          dl.var = pl.var;
          dl.band = pl.band;
          dl.index_in_band = pl.index_in_band;
          dl.dir = eq_vars.count(pl.var) ? Direction::kEq : Direction::kAny;
          dl.distance = 0;
          if (dl.dir == Direction::kAny && !d.carrier)
            d.carrier = d.loops.size();
          d.loops.push_back(dl);
        }

        // The all-'=' instance exists only when src executes before dst
        // within one iteration of the common loops: earlier statement in
        // program order, or an earlier access of the same statement.
        d.loop_independent =
            src.stmt == dst.stmt
                ? src.access < dst.access
                : stmt_rank.at(src.stmt) < stmt_rank.at(dst.stmt);

        // A dependence with neither a carried nor a loop-independent
        // instance relates no pair of dynamic accesses in this direction.
        if (!d.carried() && !d.loop_independent) continue;
        out.deps.push_back(std::move(d));
      }
    }
  }

  // Band summaries: a band is fully permutable when no dependence has two
  // '*' loops in it (with <= 1 unconstrained loop, every permutation
  // preserves every lexicographically positive instance).
  for (ir::NodeId n = 0; n < static_cast<ir::NodeId>(prog.num_nodes()); ++n) {
    if (prog.is_statement(n) || prog.band_loops(n).empty()) continue;
    BandSummary bs;
    bs.band = n;
    for (const ir::Loop& l : prog.band_loops(n)) bs.loop_vars.push_back(l.var);
    for (const Dependence& d : out.deps) {
      std::size_t any_here = 0;
      for (const DepLoop& dl : d.loops)
        if (dl.band == n && dl.dir == Direction::kAny) ++any_here;
      if (any_here >= 2) ++bs.constraining_deps;
    }
    bs.fully_permutable = bs.constraining_deps == 0;
    out.bands.push_back(std::move(bs));
  }
  return out;
}

bool interchange_legal(const DependenceAnalysis& da, ir::NodeId band,
                       const std::vector<int>& perm) {
  // new_pos[old index] = position after the permutation (perm[new] = old).
  std::vector<int> new_pos(perm.size(), 0);
  for (std::size_t i = 0; i < perm.size(); ++i)
    new_pos[static_cast<std::size_t>(perm[i])] = static_cast<int>(i);

  for (const Dependence& d : da.deps) {
    int prev = -1;
    for (const DepLoop& dl : d.loops) {
      if (dl.band != band || dl.dir != Direction::kAny) continue;
      int np = new_pos[static_cast<std::size_t>(dl.index_in_band)];
      // Reordering two '*' loops of one dependence admits an instance
      // (<,>) that the permutation turns lexicographically negative.
      if (np < prev) return false;
      prev = np;
    }
  }
  return true;
}

bool tiling_legal(const DependenceAnalysis& da, ir::NodeId band,
                  const std::set<std::string>& split_vars) {
  for (const Dependence& d : da.deps) {
    bool outer_any_seen = false;
    for (const DepLoop& dl : d.loops) {
      if (dl.band != band || dl.dir != Direction::kAny) continue;
      // tile_nest hoists the tile digit of a split loop above the whole
      // intra block; for a '*' loop with another '*' loop outer to it that
      // can reverse a (<,>) instance. The outermost '*' loop may split.
      if (outer_any_seen && split_vars.count(dl.var)) return false;
      outer_any_seen = true;
    }
  }
  return true;
}

void append_dependence_diagnostics(const DependenceAnalysis& da,
                                   const ir::SourceMap* locs,
                                   std::vector<Diagnostic>& out) {
  for (const Dependence& d : da.deps) {
    Diagnostic diag;
    diag.id = d.kind == DepKind::kFlow   ? kDP301FlowDependence
              : d.kind == DepKind::kAnti ? kDP302AntiDependence
                                         : kDP303OutputDependence;
    diag.severity = Severity::kNote;
    if (locs) diag.loc = locs->access_loc(d.src);
    diag.object = d.array;
    std::ostringstream msg;
    msg << dep_kind_name(d.kind) << " dependence on " << d.array << ": "
        << d.src_label << "[" << d.src.access << "] -> " << d.dst_label << "["
        << d.dst.access << "], direction " << d.direction_string() << ", ";
    if (d.carried())
      msg << "carried by loop '" << d.loops[*d.carrier].var << "'";
    else
      msg << "loop-independent";
    msg << " [" << d.tests_string() << "]";
    diag.message = msg.str();
    out.push_back(std::move(diag));
  }

  for (const BandSummary& bs : da.bands) {
    if (bs.loop_vars.size() < 2) continue;
    Diagnostic diag;
    diag.id = bs.fully_permutable ? kDP304BandPermutable
                                  : kDP305BandInterchangeConstrained;
    diag.severity = Severity::kNote;
    if (locs) diag.loc = locs->node_loc(bs.band);
    diag.object = "b" + std::to_string(bs.band);
    std::string vars;
    for (const std::string& v : bs.loop_vars) {
      if (!vars.empty()) vars += ",";
      vars += v;
    }
    if (bs.fully_permutable) {
      diag.message = "loop band (" + vars +
                     ") is fully permutable: every dependence has at most "
                     "one unconstrained loop here";
    } else {
      diag.message = "loop band (" + vars + ") has " +
                     std::to_string(bs.constraining_deps) +
                     " interchange-constraining dependence(s)";
    }
    out.push_back(std::move(diag));
  }
}

}  // namespace sdlo::analysis
