// Shared driver + renderers for the `misses` and `analyze` verbs.
//
// Historically the miss-prediction report was assembled inline in the CLI.
// The serve daemon (DESIGN.md §16) promises responses *byte-identical* to
// the equivalent CLI invocation — the only maintainable way to keep that
// promise is a single emitter both front ends call, so the logic moved
// here: run_misses() produces the outcome, render_misses_{text,json}()
// produce exactly the bytes `sdlo misses` prints, and render_analyze_json
// is the machine-readable twin of the `analyze` partition table (shared by
// `sdlo analyze --json` and the daemon's analyze verb). The fuzz `serve`
// oracle cross-checks the daemon against these emitters on every generated
// program.
#pragma once

#include <cstdint>
#include <ostream>

#include "cachesim/results.hpp"
#include "ir/program.hpp"
#include "model/analyzer.hpp"
#include "support/governor.hpp"
#include "trace/walker.hpp"

namespace sdlo::analysis {

struct MissesOptions {
  std::int64_t capacity = 8192;
  /// Cross-check the model against the sweep-engine simulator.
  bool simulate = false;
  trace::TraceMode mode = trace::TraceMode::kRuns;
};

struct MissesOutcome {
  model::MissPrediction pred;
  bool simulated = false;
  cachesim::SimResult sim;  ///< valid when simulated

  bool truncated() const {
    return simulated && sim.completeness == Completeness::kTruncated;
  }
  /// 2 (ExitCode::kTruncated) when the simulation was truncated, else 0.
  int exit_code() const;
};

/// Predicts misses (and optionally simulates) under `env` at the given
/// capacity. `gov` governs the simulation exactly as in `sdlo misses`.
MissesOutcome run_misses(const ir::Program& prog, const sym::Env& env,
                         const MissesOptions& opts = {},
                         const Governor* gov = nullptr);

/// The human-readable report `sdlo misses` prints.
void render_misses_text(const MissesOutcome& oc, std::ostream& os);

/// The stable JSON document `sdlo misses --json` prints (keys version/
/// capacity/accesses/predicted_misses/confidence, plus simulated_misses/
/// simulated_accesses/completeness under --simulate).
void render_misses_json(const MissesOutcome& oc, std::ostream& os);

/// Machine-readable `analyze` report: the symbolic per-partition table as
///   {"version":..., "program":..., "rows":[{"partition":...,
///    "references":..., "distance":...|"inf"}]}
/// `gov` is honored through the throwing path (analyze has no meaningful
/// partial result), mirroring the CLI.
void render_analyze_json(const ir::Program& prog, std::ostream& os,
                         const Governor* gov = nullptr);

}  // namespace sdlo::analysis
