#include "analysis/reuse.hpp"

#include <map>

#include "support/check.hpp"

namespace sdlo::analysis {

const char* locality_name(LocalityClass c) {
  switch (c) {
    case LocalityClass::kTemporal: return "temporal";
    case LocalityClass::kSpatial: return "spatial";
    case LocalityClass::kNone: return "none";
  }
  return "?";
}

ReuseAnalysis analyze_reuse(const ir::Program& prog, const sym::Env* env,
                            std::int64_t line_elems) {
  SDLO_CHECK(prog.validated(), "analyze_reuse requires validate()");
  ReuseAnalysis out;

  // Leader (first program-order reference) per array.
  std::map<std::string, ir::AccessSite> leader;
  for (const std::string& a : prog.arrays()) leader[a] = prog.refs_to(a)[0];

  for (ir::NodeId sn : prog.statements_in_order()) {
    const ir::Statement& stmt = prog.statement(sn);
    const std::vector<ir::PathLoop> path = prog.path_loops(sn);
    for (int ai = 0; ai < static_cast<int>(stmt.accesses.size()); ++ai) {
      const ir::ArrayRef& ref = stmt.accesses[static_cast<std::size_t>(ai)];
      SiteReuse sr;
      sr.site = {sn, ai};
      sr.array = ref.array;
      sr.stmt_label = stmt.label;
      sr.mode = ref.mode;
      sr.group_leader = leader.at(ref.array);
      sr.is_group_leader = sr.site == sr.group_leader;

      // Mixed-radix weight of each digit variable: product of the extents
      // of all later digits, across dimension boundaries (row-major).
      std::map<std::string, sym::Expr> weight;
      {
        sym::Expr w = sym::Expr::constant(1);
        std::vector<std::string> digits;
        for (const ir::Subscript& s : ref.subscripts)
          for (const std::string& v : s.vars) digits.push_back(v);
        for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
          weight.emplace(*it, w);
          w = w * prog.extent_of(*it);
        }
      }

      for (const ir::PathLoop& pl : path) {
        LoopReuse lr;
        lr.var = pl.var;
        lr.band = pl.band;
        lr.index_in_band = pl.index_in_band;
        auto it = weight.find(pl.var);
        lr.temporal = it == weight.end();
        lr.stride = lr.temporal ? sym::Expr::constant(0) : it->second;
        if (env)
          lr.stride_value = sym::try_evaluate(lr.stride, *env);
        else if (auto c = sym::try_evaluate(lr.stride, sym::Env{}))
          lr.stride_value = c;
        if (!lr.temporal) {
          if (line_elems >= 2)
            lr.spatial = lr.stride_value && *lr.stride_value < line_elems;
          else
            lr.spatial = lr.stride_value && *lr.stride_value == 1;
        }
        sr.loops.push_back(std::move(lr));
      }

      if (!sr.loops.empty()) {
        const LoopReuse& inner = sr.loops.back();
        sr.innermost = inner.temporal  ? LocalityClass::kTemporal
                       : inner.spatial ? LocalityClass::kSpatial
                                       : LocalityClass::kNone;
      }
      out.sites.push_back(std::move(sr));
    }
  }
  return out;
}

}  // namespace sdlo::analysis
