// Pass 1: well-formedness verifier (DESIGN.md §10, IDs WF001–WF009).
//
// Re-states the constrained-class rules that ir::Program::validate() enforces
// by throwing — subscript variables bound by an enclosing loop, unique
// loop-variable naming along each path, globally consistent extents, a single
// subscript structure per array — as *collected* diagnostics over a possibly
// unvalidated tree, so a lint run reports every violation at once with
// source positions instead of stopping at the first. When an environment is
// supplied it additionally checks that every extent symbol is bound (WF008),
// that extents are positive (WF009), and that array footprints and the total
// access count fit in int64 using support/checked_math.hpp (WF007).
#pragma once

#include <vector>

#include "analysis/diagnostics.hpp"
#include "ir/parser.hpp"
#include "ir/program.hpp"
#include "symbolic/expr.hpp"

namespace sdlo::analysis {

/// Runs the well-formedness checks on `prog` (validated or not), appending
/// findings to `out`. `locs` (may be null) supplies source positions;
/// `env` (may be null) enables the concrete-size checks WF007–WF009.
///
/// Returns true when no error-severity diagnostic was appended; in that case
/// the program is in the constrained class and validate() succeeds on it.
bool verify_program(const ir::Program& prog, const ir::SourceMap* locs,
                    const sym::Env* env, std::vector<Diagnostic>& out);

}  // namespace sdlo::analysis
