// Diagnostic framework for the static-analysis passes (DESIGN.md §10).
//
// Every finding is a Diagnostic with a *stable* ID (WFxxx well-formedness,
// APxxx model applicability, PSxxx parallelization safety), a severity, an
// optional source position threaded from ir::parser, the program object it
// concerns (array, loop variable, or statement label), and a human-readable
// message. IDs are part of the tool's contract: tests, the JSON renderer and
// downstream consumers key on them, so an ID is never renumbered or reused.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace sdlo::analysis {

/// How bad a finding is. Errors mean the program is outside the constrained
/// class (model results would be meaningless); warnings mean the model or the
/// §7 parallelization applies only approximately; notes are informational
/// classifications that do not reduce confidence.
enum class Severity : std::uint8_t { kNote, kWarning, kError };

/// Stable diagnostic identifiers. The numeric ranges mirror the pass that
/// emits them: WF0xx verifier, AP1xx applicability, PS2xx parallel safety,
/// DP3xx dependence analysis. See DESIGN.md §10 and §15 for the full
/// catalog with trigger conditions.
inline constexpr const char* kWF000ParseError = "WF000";
inline constexpr const char* kWF001UnboundSubscriptVar = "WF001";
inline constexpr const char* kWF002DuplicateVarOnPath = "WF002";
inline constexpr const char* kWF003ExtentConflict = "WF003";
inline constexpr const char* kWF004SubscriptStructureConflict = "WF004";
inline constexpr const char* kWF005VarTwiceInReference = "WF005";
inline constexpr const char* kWF006EmptyStructure = "WF006";
inline constexpr const char* kWF007FootprintOverflow = "WF007";
inline constexpr const char* kWF008UnboundSymbol = "WF008";
inline constexpr const char* kWF009NonPositiveExtent = "WF009";
inline constexpr const char* kAP101VaryingDistance = "AP101";
inline constexpr const char* kAP102InexactUnion = "AP102";
inline constexpr const char* kAP103InterpolatedPrediction = "AP103";
inline constexpr const char* kAP104SiblingReuse = "AP104";
inline constexpr const char* kAP105SweepInexact = "AP105";
inline constexpr const char* kPS201CarriedDependence = "PS201";
inline constexpr const char* kPS202FalseSharing = "PS202";
inline constexpr const char* kPS203NoParallelLoop = "PS203";
inline constexpr const char* kPS204PrivatizationRequired = "PS204";
inline constexpr const char* kDP301FlowDependence = "DP301";
inline constexpr const char* kDP302AntiDependence = "DP302";
inline constexpr const char* kDP303OutputDependence = "DP303";
inline constexpr const char* kDP304BandPermutable = "DP304";
inline constexpr const char* kDP305BandInterchangeConstrained = "DP305";

/// One finding of one pass.
struct Diagnostic {
  std::string id;
  Severity severity = Severity::kError;
  SourceLoc loc;       ///< {0, 0} when the construct has no source position
  std::string object;  ///< array / loop variable / statement label concerned
  std::string message;
};

/// "note" / "warning" / "error".
const char* severity_name(Severity s);

/// Renders one diagnostic as a compiler-style line:
///   `prog.sdlo:3:12: error: WF001: message [object]`
/// The position segment is omitted when loc is unknown, the source name when
/// empty, the trailing object when empty.
std::string to_text(const Diagnostic& d, const std::string& source_name = "");

/// Stable presentation order: source position, then pass/ID, then object.
void sort_diagnostics(std::vector<Diagnostic>& ds);

/// Number of diagnostics of the given severity.
std::size_t count_severity(const std::vector<Diagnostic>& ds, Severity s);

}  // namespace sdlo::analysis
