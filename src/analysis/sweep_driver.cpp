#include "analysis/sweep_driver.hpp"

#include <utility>

#include "cachesim/sim.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

namespace sdlo::analysis {

SweepEngine parse_sweep_engine(const std::string& name) {
  if (name == "simulate" || name == "simulated") {
    return SweepEngine::kSimulate;
  }
  if (name == "symbolic") return SweepEngine::kSymbolic;
  throw Error("unknown sweep engine '" + name +
              "' (expected 'simulate' or 'symbolic')");
}

int SweepOutcome::exit_code() const {
  return to_int(truncated() ? ExitCode::kTruncated : ExitCode::kOk);
}

std::vector<std::int64_t> sweep_ladder(std::int64_t line,
                                       std::uint64_t space) {
  std::vector<std::int64_t> caps;
  for (std::int64_t cap = line;
       cap <= static_cast<std::int64_t>(space) * 2; cap *= 2) {
    caps.push_back(cap);
  }
  return caps;
}

SweepOutcome run_sweep(const ir::Program& prog, const sym::Env& env,
                       const SweepDriverOptions& opts, const Governor* gov) {
  const trace::CompiledProgram cp(prog, env);
  SweepOutcome oc;
  oc.line_elems = opts.line_elems;
  oc.capacities = sweep_ladder(opts.line_elems, cp.address_space_size());

  if (opts.engine == SweepEngine::kSymbolic) {
    if (opts.line_elems != 1) {
      oc.fell_back = true;
      oc.fallback_reason = "line granularity (" +
                           std::to_string(opts.line_elems) +
                           " elements/line) is outside the element model";
    } else {
      const model::Analysis an = model::analyze(prog);
      const model::SymbolicSweep sweep =
          model::symbolic_sweep(an, env, opts.symbolic, gov);
      oc.confidence = sweep.confidence;
      if (sweep.confidence == model::Confidence::kExact) {
        oc.engine = "symbolic";
        oc.completeness = sweep.completeness;
        oc.accesses = static_cast<std::uint64_t>(sweep.accounted_accesses);
        oc.crossings = sweep.crossing_points();
        oc.rows.reserve(oc.capacities.size());
        for (const std::int64_t cap : oc.capacities) {
          oc.rows.push_back(sweep.result_at(cap));
        }
        return oc;
      }
      // Not model-exact: the analytic histogram would be a guess. Fall back
      // to the trace walk (sdlo lint flags the offending sites as AP105).
      oc.fell_back = true;
      oc.fallback_reason =
          "analytic histogram is not exact for this program (AP105: "
          "partitions exceed the enumeration limit with varying depth); "
          "answered by simulation";
    }
  }

  const cachesim::ProfileResult prof = cachesim::profile_stack_distances(
      cp, opts.line_elems, opts.mode, gov);
  oc.engine = "simulated";
  oc.completeness = prof.completeness;
  oc.accesses = prof.accesses;
  oc.rows.reserve(oc.capacities.size());
  for (const std::int64_t cap : oc.capacities) {
    oc.rows.push_back(prof.result(cap));
  }
  return oc;
}

void render_sweep_text(const SweepOutcome& oc, std::ostream& os) {
  std::vector<std::string> header{"capacity", "misses", "miss ratio"};
  const bool sites = !oc.rows.empty() && !oc.rows[0].misses_by_site.empty();
  if (sites) {
    for (std::size_t s = 0; s < oc.rows[0].misses_by_site.size(); ++s) {
      header.push_back("site " + std::to_string(s));
    }
  }
  TextTable t(header);
  for (std::size_t i = 0; i < oc.rows.size(); ++i) {
    const auto& r = oc.rows[i];
    std::vector<std::string> row{
        with_commas(oc.capacities[i]),
        with_commas(static_cast<std::int64_t>(r.misses)),
        format_double(oc.accesses == 0
                          ? 0.0
                          : 100.0 * static_cast<double>(r.misses) /
                                static_cast<double>(oc.accesses),
                      3) +
            "%"};
    if (sites) {
      for (const auto m : r.misses_by_site) {
        row.push_back(with_commas(static_cast<std::int64_t>(m)));
      }
    }
    t.add_row(row);
  }
  t.print(os);
  if (oc.line_elems != 1) {
    os << "(line granularity: " << oc.line_elems
       << " elements per line; capacities in elements)\n";
  }
  os << "engine: " << oc.engine;
  if (oc.engine == "symbolic") {
    os << " (analytic curve, " << oc.crossings.size()
       << " crossing points; no trace walk)";
  } else if (oc.fell_back) {
    os << " (fallback from symbolic: " << oc.fallback_reason << ")";
  }
  os << "\n";
  if (oc.truncated()) {
    if (oc.engine == "symbolic") {
      os << "TRUNCATED by budget after "
         << with_commas(static_cast<std::int64_t>(oc.accesses))
         << " accesses' worth of partitions: best-so-far partial curve "
            "(lower bounds for the full program)\n";
    } else {
      os << "TRUNCATED by budget after "
         << with_commas(static_cast<std::int64_t>(oc.accesses))
         << " accesses: counts are exact for that prefix (lower "
            "bounds for the full trace)\n";
    }
  }
}

void render_sweep_json(const SweepOutcome& oc, std::ostream& os,
                       bool sites) {
  os << "{\"version\":\"" << kVersionNumber << "\",\"engine\":\""
     << oc.engine << "\",\"fell_back\":"
     << (oc.fell_back ? "true" : "false");
  if (oc.fell_back) {
    os << ",\"fallback_reason\":\"" << oc.fallback_reason << "\"";
  }
  os << ",\"confidence\":\"" << model::confidence_name(oc.confidence)
     << "\",\"line_elems\":" << oc.line_elems
     << ",\"accesses\":" << oc.accesses << ",\"completeness\":\""
     << (oc.truncated() ? "truncated" : "complete") << "\",\"rows\":[";
  for (std::size_t i = 0; i < oc.rows.size(); ++i) {
    os << (i == 0 ? "" : ",") << "{\"capacity\":" << oc.capacities[i]
       << ",\"misses\":" << oc.rows[i].misses;
    if (sites) {
      os << ",\"misses_by_site\":[";
      for (std::size_t s = 0; s < oc.rows[i].misses_by_site.size(); ++s) {
        os << (s == 0 ? "" : ",") << oc.rows[i].misses_by_site[s];
      }
      os << "]";
    }
    os << "}";
  }
  os << "]";
  if (oc.engine == "symbolic") {
    os << ",\"crossings\":[";
    for (std::size_t i = 0; i < oc.crossings.size(); ++i) {
      os << (i == 0 ? "" : ",") << oc.crossings[i];
    }
    os << "]";
  }
  os << "}\n";
}

}  // namespace sdlo::analysis
