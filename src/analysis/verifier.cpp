#include "analysis/verifier.hpp"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "support/checked_math.hpp"
#include "support/string_util.hpp"

namespace sdlo::analysis {

namespace {

using ir::NodeId;
using sym::Expr;

class Verifier {
 public:
  Verifier(const ir::Program& prog, const ir::SourceMap* locs,
           const sym::Env* env, std::vector<Diagnostic>& out)
      : prog_(prog), locs_(locs), env_(env), out_(out) {}

  bool run() {
    const std::size_t errors_before = count_severity(out_, Severity::kError);
    std::vector<std::pair<std::string, NodeId>> path;
    walk(ir::Program::kRoot, path);
    if (num_statements_ == 0) {
      emit(kWF006EmptyStructure, Severity::kError, SourceLoc{}, "",
           "program contains no statements");
    }
    if (env_ != nullptr) check_env();
    return count_severity(out_, Severity::kError) == errors_before;
  }

 private:
  void emit(const char* id, Severity sev, SourceLoc loc, std::string object,
            std::string message) {
    out_.push_back(Diagnostic{id, sev, loc, std::move(object),
                              std::move(message)});
  }

  SourceLoc node_loc(NodeId n) const {
    return locs_ != nullptr ? locs_->node_loc(n) : SourceLoc{};
  }
  SourceLoc access_loc(const ir::AccessSite& s) const {
    return locs_ != nullptr ? locs_->access_loc(s) : SourceLoc{};
  }

  // One pre-order walk collects every structural fact the checks need.
  void walk(NodeId n, std::vector<std::pair<std::string, NodeId>>& path) {
    if (prog_.is_statement(n)) {
      ++num_statements_;
      check_statement(n, path);
      return;
    }
    const std::size_t pushed = enter_band(n, path);
    if (n != ir::Program::kRoot && prog_.children(n).empty()) {
      emit(kWF006EmptyStructure, Severity::kError, node_loc(n), "",
           "band node with no children");
    }
    for (NodeId c : prog_.children(n)) walk(c, path);
    path.resize(path.size() - pushed);
  }

  std::size_t enter_band(NodeId n,
                         std::vector<std::pair<std::string, NodeId>>& path) {
    std::size_t pushed = 0;
    for (const auto& l : prog_.band_loops(n)) {
      for (const auto& p : path) {
        if (p.first == l.var) {
          emit(kWF002DuplicateVarOnPath, Severity::kError, node_loc(n), l.var,
               "loop variable '" + l.var +
                   "' repeated along one nesting path");
        }
      }
      const auto it = var_extent_.find(l.var);
      if (it == var_extent_.end()) {
        var_extent_.emplace(l.var, std::make_pair(l.extent, n));
        var_order_.push_back(l.var);
      } else if (!it->second.first.equals(l.extent)) {
        emit(kWF003ExtentConflict, Severity::kError, node_loc(n), l.var,
             "loop variable '" + l.var + "' re-declared with extent " +
                 sym::to_string(l.extent) + " (previously " +
                 sym::to_string(it->second.first) + ")");
      }
      path.emplace_back(l.var, n);
      ++pushed;
    }
    return pushed;
  }

  void check_statement(NodeId n,
                       const std::vector<std::pair<std::string, NodeId>>& path) {
    std::set<std::string> on_path;
    for (const auto& p : path) on_path.insert(p.first);
    const ir::Statement& stmt = prog_.statement(n);
    for (std::size_t a = 0; a < stmt.accesses.size(); ++a) {
      const ir::ArrayRef& ref = stmt.accesses[a];
      const ir::AccessSite site{n, static_cast<int>(a)};
      const SourceLoc at = access_loc(site);
      if (!is_identifier(ref.array)) {
        emit(kWF006EmptyStructure, Severity::kError, at, ref.array,
             "array name '" + ref.array + "' is not an identifier");
      }
      std::set<std::string> used;
      for (const auto& sub : ref.subscripts) {
        if (sub.vars.empty()) {
          emit(kWF006EmptyStructure, Severity::kError, at, ref.array,
               "empty subscript in reference to '" + ref.array + "'");
        }
        for (const auto& v : sub.vars) {
          if (on_path.count(v) == 0) {
            emit(kWF001UnboundSubscriptVar, Severity::kError, at, v,
                 "subscript variable '" + v + "' of array '" + ref.array +
                     "' is not an enclosing loop of statement " + stmt.label);
          }
          if (!used.insert(v).second) {
            emit(kWF005VarTwiceInReference, Severity::kError, at, v,
                 "variable '" + v + "' used twice in one reference to '" +
                     ref.array + "'");
          }
        }
      }
      const auto it = shape_.find(ref.array);
      if (it == shape_.end()) {
        shape_.emplace(ref.array, ref.subscripts);
        array_order_.push_back(ref.array);
        first_ref_.emplace(ref.array, site);
      } else if (!(it->second == ref.subscripts)) {
        emit(kWF004SubscriptStructureConflict, Severity::kError, at,
             ref.array,
             "array '" + ref.array +
                 "' referenced with two different subscript structures; the "
                 "model's element-identity rule requires a single structure");
      }
      access_terms_.emplace_back(n, stmt.accesses.size());
    }
  }

  // Concrete-size checks: every extent symbol bound (WF008), extents
  // positive (WF009), array footprints and the total access count
  // representable in int64 (WF007).
  void check_env() {
    std::set<std::string> reported_unbound;
    std::map<std::string, std::int64_t> extent_value;
    for (const auto& var : var_order_) {
      const auto& [extent, band] = var_extent_.at(var);
      bool bound = true;
      for (const auto& s : sym::symbols_of(extent)) {
        if (env_->count(s) != 0) continue;
        bound = false;
        if (reported_unbound.insert(s).second) {
          emit(kWF008UnboundSymbol, Severity::kError, node_loc(band), s,
               "environment does not bind symbol '" + s +
                   "' used in the extent of loop '" + var + "'");
        }
      }
      if (!bound) continue;
      try {
        const std::int64_t v = sym::evaluate(extent, *env_);
        extent_value.emplace(var, v);
        if (v <= 0) {
          emit(kWF009NonPositiveExtent, Severity::kWarning, node_loc(band),
               var,
               "extent " + sym::to_string(extent) + " of loop '" + var +
                   "' evaluates to " + std::to_string(v) +
                   " under this environment (loop body never executes)");
        }
      } catch (const Error& e) {
        emit(kWF007FootprintOverflow, Severity::kError, node_loc(band), var,
             "extent " + sym::to_string(extent) + " of loop '" + var +
                 "' does not evaluate: " + e.what());
      }
    }

    const auto value_of = [&](const std::string& var)
        -> std::optional<std::int64_t> {
      const auto it = extent_value.find(var);
      if (it == extent_value.end() || it->second <= 0) return std::nullopt;
      return it->second;
    };

    for (const auto& array : array_order_) {
      std::int64_t footprint = 1;
      bool computable = true;
      try {
        for (const auto& sub : shape_.at(array)) {
          for (const auto& v : sub.vars) {
            const auto ev = value_of(v);
            if (!ev) {
              computable = false;
              break;
            }
            footprint = checked_mul(footprint, *ev);
          }
          if (!computable) break;
        }
      } catch (const ContractViolation&) {
        emit(kWF007FootprintOverflow, Severity::kError,
             access_loc(first_ref_.at(array)), array,
             "footprint of array '" + array +
                 "' overflows int64 under this environment");
      }
    }

    try {
      std::int64_t total = 0;
      for (const auto& [stmt, accesses] : access_terms_) {
        std::int64_t instances = 1;
        bool computable = true;
        for (const auto& pl : prog_.path_loops(stmt)) {
          const auto ev = value_of(pl.var);
          if (!ev) {
            computable = false;
            break;
          }
          instances = checked_mul(instances, *ev);
        }
        if (!computable) continue;
        total = checked_add(
            total,
            checked_mul(instances, static_cast<std::int64_t>(accesses)));
      }
    } catch (const ContractViolation&) {
      emit(kWF007FootprintOverflow, Severity::kError, SourceLoc{}, "program",
           "total access count overflows int64 under this environment");
    }
  }

  const ir::Program& prog_;
  const ir::SourceMap* locs_;
  const sym::Env* env_;
  std::vector<Diagnostic>& out_;

  std::size_t num_statements_ = 0;
  std::map<std::string, std::pair<Expr, NodeId>> var_extent_;
  std::vector<std::string> var_order_;
  std::map<std::string, std::vector<ir::Subscript>> shape_;
  std::vector<std::string> array_order_;
  std::map<std::string, ir::AccessSite> first_ref_;
  std::vector<std::pair<NodeId, std::size_t>> access_terms_;
};

}  // namespace

bool verify_program(const ir::Program& prog, const ir::SourceMap* locs,
                    const sym::Env* env, std::vector<Diagnostic>& out) {
  return Verifier(prog, locs, env, out).run();
}

}  // namespace sdlo::analysis
