// Lint driver: runs the verifier, applicability and parallel-safety passes
// over one program and renders the combined report (DESIGN.md §10).
//
// The pass pipeline is staged: the well-formedness verifier always runs;
// the model passes require a program in the constrained class, so they run
// only when the verifier reports no errors. `sdlo lint` is a thin wrapper
// over lint_text + one of the renderers.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/applicability.hpp"
#include "analysis/diagnostics.hpp"
#include "analysis/parallel_safety.hpp"
#include "ir/parser.hpp"
#include "ir/program.hpp"
#include "model/analyzer.hpp"
#include "symbolic/expr.hpp"

namespace sdlo::analysis {

struct LintOptions {
  /// Concrete sizes. Empty → the env-dependent checks (WF007–WF009,
  /// AP103, PS202) are skipped.
  sym::Env env;
  /// Cache capacity in elements for the interpolation check (AP103);
  /// 0 → no concrete prediction is run.
  std::int64_t capacity = 0;
  /// Cache line size in elements for false-sharing analysis (PS202);
  /// 0 → skipped.
  std::int64_t line_elems = 0;
  /// Inclusion–exclusion budget forwarded to check_applicability; windows
  /// with more boxes are over-approximated and flagged AP102.
  std::size_t max_union_boxes = 12;
  model::PredictOptions predict;
};

struct LintReport {
  std::vector<Diagnostic> diagnostics;  ///< sorted (sort_diagnostics order)
  /// True when the verifier found no errors and the model passes ran.
  bool verified = false;
  std::optional<ApplicabilityResult> applicability;
  std::vector<LoopParallelism> loops;

  std::size_t num_errors() const {
    return count_severity(diagnostics, Severity::kError);
  }
  std::size_t num_warnings() const {
    return count_severity(diagnostics, Severity::kWarning);
  }
  std::size_t num_notes() const {
    return count_severity(diagnostics, Severity::kNote);
  }
  /// In the constrained class: model results are meaningful.
  bool ok() const { return num_errors() == 0; }
  /// Fully clean: the model applies exactly as stated (notes permitted).
  bool clean() const { return ok() && num_warnings() == 0; }
};

/// Appends the AP101–AP104 diagnostics for a classified program to `out`.
/// Exposed separately from lint_program so callers (and tests) can emit
/// diagnostics from an ApplicabilityResult they obtained or adjusted
/// themselves; `locs` may be null, `capacity` only labels AP103 messages.
void append_applicability_diagnostics(const ApplicabilityResult& ap,
                                      const ir::SourceMap* locs,
                                      std::int64_t capacity,
                                      std::vector<Diagnostic>& out);

/// Lints an IR tree (validated or not). `locs` may be null.
LintReport lint_program(const ir::Program& prog, const ir::SourceMap* locs,
                        const LintOptions& opts = {});

/// Parses and lints program text; parse failures become a WF000 error
/// diagnostic rather than a thrown ParseError.
LintReport lint_text(const std::string& text, const LintOptions& opts = {});

/// Compiler-style text report (diagnostic lines, pass summaries, totals).
void render_text(const LintReport& rep, std::ostream& os,
                 const std::string& source_name = "");

/// Machine-readable report. The schema is stable and documented in the
/// README: top-level keys ok/clean/counts/diagnostics/model/parallel, with
/// model and parallel null when the verifier failed.
void render_json(const LintReport& rep, std::ostream& os);

}  // namespace sdlo::analysis
