#include "symbolic/expr.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"
#include "support/checked_math.hpp"
#include "support/string_util.hpp"

namespace sdlo::sym {

namespace detail {

struct ExprNode {
  Kind kind = Kind::kConst;
  std::int64_t value = 0;     // kConst
  std::string name;           // kSymbol
  std::vector<Expr> ops;      // interior nodes
};

}  // namespace detail

using detail::ExprNode;

namespace {

Expr make_leaf_const(std::int64_t v) {
  auto n = std::make_shared<ExprNode>();
  n->kind = Kind::kConst;
  n->value = v;
  return Expr(static_cast<std::shared_ptr<const ExprNode>>(n));
}

int kind_rank(Kind k) { return static_cast<int>(k); }

}  // namespace

Expr::Expr(std::shared_ptr<const detail::ExprNode> n) : node_(std::move(n)) {}

Expr::Expr() : Expr(constant(0)) {}

Expr Expr::constant(std::int64_t v) { return make_leaf_const(v); }

Expr Expr::symbol(const std::string& name) {
  SDLO_EXPECTS(is_identifier(name));
  auto n = std::make_shared<ExprNode>();
  n->kind = Kind::kSymbol;
  n->name = name;
  return Expr(static_cast<std::shared_ptr<const ExprNode>>(n));
}

Kind Expr::kind() const { return node_->kind; }

bool Expr::is_const_value(std::int64_t v) const {
  return is_const() && node_->value == v;
}

std::int64_t Expr::const_value() const {
  SDLO_EXPECTS(is_const());
  return node_->value;
}

const std::string& Expr::symbol_name() const {
  SDLO_EXPECTS(kind() == Kind::kSymbol);
  return node_->name;
}

std::span<const Expr> Expr::operands() const { return node_->ops; }

int Expr::compare(const Expr& a, const Expr& b) {
  if (a.node_ == b.node_) return 0;
  if (kind_rank(a.kind()) != kind_rank(b.kind())) {
    return kind_rank(a.kind()) < kind_rank(b.kind()) ? -1 : 1;
  }
  switch (a.kind()) {
    case Kind::kConst: {
      if (a.const_value() == b.const_value()) return 0;
      return a.const_value() < b.const_value() ? -1 : 1;
    }
    case Kind::kSymbol:
      return a.symbol_name().compare(b.symbol_name());
    default: {
      const auto& ao = a.operands();
      const auto& bo = b.operands();
      if (ao.size() != bo.size()) return ao.size() < bo.size() ? -1 : 1;
      for (std::size_t i = 0; i < ao.size(); ++i) {
        int c = compare(ao[i], bo[i]);
        if (c != 0) return c;
      }
      return 0;
    }
  }
}

bool Expr::equals(const Expr& other) const {
  return compare(*this, other) == 0;
}

namespace {

// ---------------------------------------------------------------------------
// Normalization. The canonical form is a polynomial:
//   Add( c0, c1*atom..., c2*atom*atom..., ... )
// where an atom is a Symbol, FloorDiv, CeilDiv, Min or Max node (divisions
// and min/max are treated as opaque factors). Products distribute over sums;
// like monomials are collected.
// ---------------------------------------------------------------------------

Expr make_raw(Kind k, std::vector<Expr> ops) {
  auto n = std::make_shared<ExprNode>();
  n->kind = k;
  n->ops = std::move(ops);
  return Expr(static_cast<std::shared_ptr<const ExprNode>>(n));
}

// A monomial: integer coefficient times a sorted list of atomic factors.
struct Monomial {
  std::int64_t coeff = 1;
  std::vector<Expr> atoms;  // sorted by Expr::compare
};

int compare_atoms(const std::vector<Expr>& a, const std::vector<Expr>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = 0; i < a.size(); ++i) {
    int c = Expr::compare(a[i], b[i]);
    if (c != 0) return c;
  }
  return 0;
}

// Polynomial = sum of monomials with distinct atom lists.
using Poly = std::vector<Monomial>;

void add_monomial(Poly& p, Monomial m) {
  if (m.coeff == 0) return;
  for (auto& existing : p) {
    if (compare_atoms(existing.atoms, m.atoms) == 0) {
      existing.coeff = checked_add(existing.coeff, m.coeff);
      return;
    }
  }
  p.push_back(std::move(m));
}

Poly poly_add(const Poly& a, const Poly& b) {
  Poly out = a;
  for (const auto& m : b) add_monomial(out, m);
  std::erase_if(out, [](const Monomial& m) { return m.coeff == 0; });
  return out;
}

Poly poly_mul(const Poly& a, const Poly& b) {
  Poly out;
  for (const auto& ma : a) {
    for (const auto& mb : b) {
      Monomial m;
      m.coeff = checked_mul(ma.coeff, mb.coeff);
      m.atoms = ma.atoms;
      m.atoms.insert(m.atoms.end(), mb.atoms.begin(), mb.atoms.end());
      std::sort(m.atoms.begin(), m.atoms.end(),
                [](const Expr& x, const Expr& y) {
                  return Expr::compare(x, y) < 0;
                });
      add_monomial(out, std::move(m));
    }
  }
  std::erase_if(out, [](const Monomial& m) { return m.coeff == 0; });
  return out;
}

Expr poly_to_expr(const Poly& p);

// Converts an arbitrary (already-normalized-children) expression to Poly.
Poly to_poly(const Expr& e) {
  switch (e.kind()) {
    case Kind::kConst: {
      if (e.const_value() == 0) return {};
      Monomial m;
      m.coeff = e.const_value();
      return {std::move(m)};
    }
    case Kind::kAdd: {
      Poly out;
      for (const auto& op : e.operands()) out = poly_add(out, to_poly(op));
      return out;
    }
    case Kind::kMul: {
      Poly out;
      Monomial unit;
      out.push_back(unit);
      for (const auto& op : e.operands()) out = poly_mul(out, to_poly(op));
      return out;
    }
    default: {
      // Symbol / Div / Min / Max: opaque atom.
      Monomial m;
      m.atoms.push_back(e);
      return {std::move(m)};
    }
  }
}

bool monomial_less(const Monomial& a, const Monomial& b) {
  int c = compare_atoms(a.atoms, b.atoms);
  if (c != 0) return c < 0;
  return a.coeff < b.coeff;
}

Expr poly_to_expr(const Poly& p) {
  if (p.empty()) return Expr::constant(0);
  Poly sorted = p;
  std::sort(sorted.begin(), sorted.end(), monomial_less);
  std::vector<Expr> terms;
  terms.reserve(sorted.size());
  for (const auto& m : sorted) {
    if (m.atoms.empty()) {
      terms.push_back(Expr::constant(m.coeff));
      continue;
    }
    std::vector<Expr> factors;
    if (m.coeff != 1) factors.push_back(Expr::constant(m.coeff));
    factors.insert(factors.end(), m.atoms.begin(), m.atoms.end());
    terms.push_back(factors.size() == 1 ? factors[0]
                                        : make_raw(Kind::kMul, factors));
  }
  if (terms.size() == 1) return terms[0];
  return make_raw(Kind::kAdd, std::move(terms));
}

Expr normalize_poly(const Expr& e) { return poly_to_expr(to_poly(e)); }

}  // namespace

Expr operator+(const Expr& a, const Expr& b) {
  return poly_to_expr(poly_add(to_poly(a), to_poly(b)));
}

Expr operator-(const Expr& a, const Expr& b) {
  return a + (-b);
}

Expr operator-(const Expr& a) {
  return Expr::constant(-1) * a;
}

Expr operator*(const Expr& a, const Expr& b) {
  return poly_to_expr(poly_mul(to_poly(a), to_poly(b)));
}

Expr floor_div(const Expr& a, const Expr& b) {
  if (b.is_const_value(1)) return a;
  if (a.is_const() && b.is_const() && b.const_value() > 0) {
    return Expr::constant(sdlo::floor_div(a.const_value(), b.const_value()));
  }
  if (a.equals(b)) return Expr::constant(1);
  return normalize_poly(make_raw(Kind::kFloorDiv, {a, b}));
}

Expr ceil_div(const Expr& a, const Expr& b) {
  if (b.is_const_value(1)) return a;
  if (a.is_const() && b.is_const() && b.const_value() > 0) {
    return Expr::constant(sdlo::ceil_div(a.const_value(), b.const_value()));
  }
  if (a.equals(b)) return Expr::constant(1);
  return normalize_poly(make_raw(Kind::kCeilDiv, {a, b}));
}

namespace {

Expr make_minmax(Kind k, const Expr& a, const Expr& b) {
  // Flatten, dedupe, fold constants.
  std::vector<Expr> ops;
  std::int64_t folded = (k == Kind::kMin)
                            ? std::numeric_limits<std::int64_t>::max()
                            : std::numeric_limits<std::int64_t>::min();
  bool have_const = false;
  auto absorb = [&](const Expr& e, auto&& self) -> void {
    if (e.kind() == k) {
      for (const auto& op : e.operands()) self(op, self);
      return;
    }
    if (e.is_const()) {
      have_const = true;
      folded = (k == Kind::kMin) ? std::min(folded, e.const_value())
                                 : std::max(folded, e.const_value());
      return;
    }
    for (const auto& existing : ops) {
      if (existing.equals(e)) return;
    }
    ops.push_back(e);
  };
  absorb(a, absorb);
  absorb(b, absorb);
  if (have_const) ops.push_back(Expr::constant(folded));
  SDLO_ENSURES(!ops.empty());
  if (ops.size() == 1) return ops[0];
  std::sort(ops.begin(), ops.end(), [](const Expr& x, const Expr& y) {
    return Expr::compare(x, y) < 0;
  });
  return make_raw(k, std::move(ops));
}

}  // namespace

Expr min(const Expr& a, const Expr& b) { return make_minmax(Kind::kMin, a, b); }
Expr max(const Expr& a, const Expr& b) { return make_minmax(Kind::kMax, a, b); }

std::int64_t evaluate(const Expr& e, const Env& env) {
  switch (e.kind()) {
    case Kind::kConst:
      return e.const_value();
    case Kind::kSymbol: {
      auto it = env.find(e.symbol_name());
      if (it == env.end()) {
        throw Error("unbound symbol in evaluate(): " + e.symbol_name());
      }
      return it->second;
    }
    case Kind::kAdd: {
      std::int64_t acc = 0;
      for (const auto& op : e.operands()) {
        acc = checked_add(acc, evaluate(op, env));
      }
      return acc;
    }
    case Kind::kMul: {
      std::int64_t acc = 1;
      for (const auto& op : e.operands()) {
        acc = checked_mul(acc, evaluate(op, env));
      }
      return acc;
    }
    case Kind::kFloorDiv: {
      const std::int64_t num = evaluate(e.operands()[0], env);
      const std::int64_t den = evaluate(e.operands()[1], env);
      SDLO_CHECK(den > 0, "floor_div by non-positive divisor");
      return sdlo::floor_div(num, den);
    }
    case Kind::kCeilDiv: {
      const std::int64_t num = evaluate(e.operands()[0], env);
      const std::int64_t den = evaluate(e.operands()[1], env);
      SDLO_CHECK(den > 0, "ceil_div by non-positive divisor");
      return sdlo::ceil_div(num, den);
    }
    case Kind::kMin: {
      std::int64_t acc = std::numeric_limits<std::int64_t>::max();
      for (const auto& op : e.operands()) {
        acc = std::min(acc, evaluate(op, env));
      }
      return acc;
    }
    case Kind::kMax: {
      std::int64_t acc = std::numeric_limits<std::int64_t>::min();
      for (const auto& op : e.operands()) {
        acc = std::max(acc, evaluate(op, env));
      }
      return acc;
    }
  }
  throw Error("corrupt expression node");
}

std::optional<std::int64_t> try_evaluate(const Expr& e, const Env& env) {
  for (const auto& s : symbols_of(e)) {
    if (env.find(s) == env.end()) return std::nullopt;
  }
  return evaluate(e, env);
}

Expr substitute(const Expr& e, const Env& env) {
  switch (e.kind()) {
    case Kind::kConst:
      return e;
    case Kind::kSymbol: {
      auto it = env.find(e.symbol_name());
      return it == env.end() ? e : Expr::constant(it->second);
    }
    case Kind::kAdd: {
      Expr acc = Expr::constant(0);
      for (const auto& op : e.operands()) acc = acc + substitute(op, env);
      return acc;
    }
    case Kind::kMul: {
      Expr acc = Expr::constant(1);
      for (const auto& op : e.operands()) acc = acc * substitute(op, env);
      return acc;
    }
    case Kind::kFloorDiv:
      return floor_div(substitute(e.operands()[0], env),
                       substitute(e.operands()[1], env));
    case Kind::kCeilDiv:
      return ceil_div(substitute(e.operands()[0], env),
                      substitute(e.operands()[1], env));
    case Kind::kMin: {
      Expr acc = substitute(e.operands()[0], env);
      for (std::size_t i = 1; i < e.operands().size(); ++i) {
        acc = min(acc, substitute(e.operands()[i], env));
      }
      return acc;
    }
    case Kind::kMax: {
      Expr acc = substitute(e.operands()[0], env);
      for (std::size_t i = 1; i < e.operands().size(); ++i) {
        acc = max(acc, substitute(e.operands()[i], env));
      }
      return acc;
    }
  }
  throw Error("corrupt expression node");
}

Expr substitute_exprs(const Expr& e,
                      const std::map<std::string, Expr>& map) {
  switch (e.kind()) {
    case Kind::kConst:
      return e;
    case Kind::kSymbol: {
      auto it = map.find(e.symbol_name());
      return it == map.end() ? e : it->second;
    }
    case Kind::kAdd: {
      Expr acc = Expr::constant(0);
      for (const auto& op : e.operands()) {
        acc = acc + substitute_exprs(op, map);
      }
      return acc;
    }
    case Kind::kMul: {
      Expr acc = Expr::constant(1);
      for (const auto& op : e.operands()) {
        acc = acc * substitute_exprs(op, map);
      }
      return acc;
    }
    case Kind::kFloorDiv:
      return floor_div(substitute_exprs(e.operands()[0], map),
                       substitute_exprs(e.operands()[1], map));
    case Kind::kCeilDiv:
      return ceil_div(substitute_exprs(e.operands()[0], map),
                      substitute_exprs(e.operands()[1], map));
    case Kind::kMin:
    case Kind::kMax: {
      Expr acc = substitute_exprs(e.operands()[0], map);
      for (std::size_t i = 1; i < e.operands().size(); ++i) {
        const Expr rhs = substitute_exprs(e.operands()[i], map);
        acc = (e.kind() == Kind::kMin) ? min(acc, rhs) : max(acc, rhs);
      }
      return acc;
    }
  }
  throw Error("corrupt expression node");
}

std::set<std::string> symbols_of(const Expr& e) {
  std::set<std::string> out;
  auto walk = [&](const Expr& x, auto&& self) -> void {
    if (x.kind() == Kind::kSymbol) {
      out.insert(x.symbol_name());
      return;
    }
    for (const auto& op : x.operands()) self(op, self);
  };
  walk(e, walk);
  return out;
}

namespace {

void render(const Expr& e, std::ostream& os, int parent_rank);

// Precedence ranks: 0 = additive, 1 = multiplicative, 2 = atom.
int rank_of(const Expr& e) {
  switch (e.kind()) {
    case Kind::kAdd:
      return 0;
    case Kind::kMul:
      return 1;
    default:
      return 2;
  }
}

void render(const Expr& e, std::ostream& os, int parent_rank) {
  const int my_rank = rank_of(e);
  const bool paren = my_rank < parent_rank;
  if (paren) os << "(";
  switch (e.kind()) {
    case Kind::kConst:
      os << e.const_value();
      break;
    case Kind::kSymbol:
      os << e.symbol_name();
      break;
    case Kind::kAdd: {
      bool first = true;
      for (const auto& op : e.operands()) {
        // Render "+ -k*x" as "- k*x".
        bool negative = false;
        Expr to_render = op;
        if (op.is_const() && op.const_value() < 0) {
          negative = true;
          to_render = Expr::constant(-op.const_value());
        } else if (op.kind() == Kind::kMul && !op.operands().empty() &&
                   op.operands()[0].is_const() &&
                   op.operands()[0].const_value() < 0) {
          negative = true;
          Expr acc = Expr::constant(-op.operands()[0].const_value());
          for (std::size_t i = 1; i < op.operands().size(); ++i) {
            acc = acc * op.operands()[i];
          }
          to_render = acc;
        }
        if (first) {
          if (negative) os << "-";
        } else {
          os << (negative ? " - " : " + ");
        }
        first = false;
        render(to_render, os, 1);
      }
      break;
    }
    case Kind::kMul: {
      bool first = true;
      for (const auto& op : e.operands()) {
        if (first && op.is_const_value(-1)) {
          os << "-";  // leading -1 coefficient renders as unary minus
          continue;   // the next factor still counts as the first
        }
        if (!first) os << "*";
        first = false;
        render(op, os, 2);
      }
      break;
    }
    case Kind::kFloorDiv:
      os << "floor(";
      render(e.operands()[0], os, 0);
      os << "/";
      render(e.operands()[1], os, 0);
      os << ")";
      break;
    case Kind::kCeilDiv:
      os << "ceil(";
      render(e.operands()[0], os, 0);
      os << "/";
      render(e.operands()[1], os, 0);
      os << ")";
      break;
    case Kind::kMin:
    case Kind::kMax: {
      os << (e.kind() == Kind::kMin ? "min(" : "max(");
      bool first = true;
      for (const auto& op : e.operands()) {
        if (!first) os << ", ";
        first = false;
        render(op, os, 0);
      }
      os << ")";
      break;
    }
  }
  if (paren) os << ")";
}

}  // namespace

std::string to_string(const Expr& e) {
  std::ostringstream os;
  render(e, os, 0);
  return os.str();
}

std::optional<Linear> as_linear(const Expr& e, const std::string& x) {
  // Work over the normalized polynomial: every monomial either lacks x, has
  // exactly one atom == Symbol(x) (and no other atom mentioning x), or is
  // non-linear in x.
  auto mentions_x = [&](const Expr& atom) {
    return symbols_of(atom).count(x) != 0;
  };
  Expr coeff = Expr::constant(0);
  Expr offset = Expr::constant(0);
  const Expr xs = Expr::symbol(x);

  auto handle_term = [&](const Expr& term) -> bool {
    std::vector<Expr> factors;
    if (term.kind() == Kind::kMul) {
      factors.assign(term.operands().begin(), term.operands().end());
    } else {
      factors.push_back(term);
    }
    Expr rest = Expr::constant(1);
    int x_power = 0;
    for (const auto& f : factors) {
      if (f.equals(xs)) {
        ++x_power;
      } else if (mentions_x(f)) {
        return false;  // x inside a div/min/max or a foreign symbol product
      } else {
        rest = rest * f;
      }
    }
    if (x_power == 0) {
      offset = offset + term;
    } else if (x_power == 1) {
      coeff = coeff + rest;
    } else {
      return false;
    }
    return true;
  };

  if (e.kind() == Kind::kAdd) {
    for (const auto& term : e.operands()) {
      if (!handle_term(term)) return std::nullopt;
    }
  } else {
    if (!handle_term(e)) return std::nullopt;
  }
  return Linear{coeff, offset};
}

}  // namespace sdlo::sym
