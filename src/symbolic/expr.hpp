// Integer symbolic expressions.
//
// The stack-distance model of §5 manipulates counts that are polynomials in
// symbolic loop bounds (N, V), tile sizes (Ti, Tj, ...) and partition pivots
// (x), combined with floor/ceil division (number of tiles) and min/max
// (clamped ranges). This module provides an immutable expression DAG with a
// normalizing simplifier, an evaluator, substitution, and printing.
//
// Expressions are handles (`Expr`) over shared immutable nodes; copying is
// O(1) and thread-safe (CP.31: values, not shared mutable state).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

namespace sdlo::sym {

/// Node discriminator for Expr.
enum class Kind : std::uint8_t {
  kConst,     ///< 64-bit integer literal
  kSymbol,    ///< named free variable
  kAdd,       ///< n-ary sum
  kMul,       ///< n-ary product
  kFloorDiv,  ///< floor(a / b), b > 0
  kCeilDiv,   ///< ceil(a / b), b > 0
  kMin,       ///< n-ary minimum
  kMax,       ///< n-ary maximum
};

class Expr;

/// Variable binding environment for evaluate()/substitute().
using Env = std::map<std::string, std::int64_t>;

namespace detail {
struct ExprNode;
}

/// Immutable handle to a symbolic integer expression.
///
/// Default-constructed Expr is the constant 0. All arithmetic helpers
/// normalize eagerly (constants folded, sums/products flattened, like terms
/// collected), so structural equality `equals()` is a usable semantic check
/// for the forms the model produces.
class Expr {
 public:
  /// The constant 0.
  Expr();

  /// Integer literal.
  static Expr constant(std::int64_t v);
  /// Named symbol (must be a valid identifier).
  static Expr symbol(const std::string& name);

  Kind kind() const;
  bool is_const() const { return kind() == Kind::kConst; }
  /// True iff this is the literal `v`.
  bool is_const_value(std::int64_t v) const;
  /// Literal value; requires kind() == kConst.
  std::int64_t const_value() const;
  /// Symbol name; requires kind() == kSymbol.
  const std::string& symbol_name() const;
  /// Child expressions (empty for leaves).
  std::span<const Expr> operands() const;

  /// Structural equality on normalized forms.
  bool equals(const Expr& other) const;

  /// Deterministic total order (used to canonicalize operand order).
  static int compare(const Expr& a, const Expr& b);

  // Normalizing constructors. Division requires a positive divisor at
  // evaluation time (checked there).
  friend Expr operator+(const Expr& a, const Expr& b);
  friend Expr operator-(const Expr& a, const Expr& b);
  friend Expr operator-(const Expr& a);
  friend Expr operator*(const Expr& a, const Expr& b);

  const detail::ExprNode* node() const { return node_.get(); }

  /// Internal: wraps an already-built node. Not part of the public API.
  explicit Expr(std::shared_ptr<const detail::ExprNode> n);

 private:
  std::shared_ptr<const detail::ExprNode> node_;
};

/// floor(a/b). b must evaluate to a positive value.
Expr floor_div(const Expr& a, const Expr& b);
/// ceil(a/b). b must evaluate to a positive value.
Expr ceil_div(const Expr& a, const Expr& b);
/// min(a, b).
Expr min(const Expr& a, const Expr& b);
/// max(a, b).
Expr max(const Expr& a, const Expr& b);

/// Evaluates with all symbols bound; throws sdlo::Error if a symbol is
/// unbound or a divisor is non-positive. Overflow throws ContractViolation.
std::int64_t evaluate(const Expr& e, const Env& env);

/// evaluate() returning nullopt instead of throwing on unbound symbols.
std::optional<std::int64_t> try_evaluate(const Expr& e, const Env& env);

/// Replaces bound symbols by literals and re-normalizes. Unbound symbols
/// remain symbolic.
Expr substitute(const Expr& e, const Env& env);

/// Replaces symbols by expressions (single pass, no fixpoint) and
/// re-normalizes.
Expr substitute_exprs(const Expr& e, const std::map<std::string, Expr>& map);

/// Free symbols of `e`.
std::set<std::string> symbols_of(const Expr& e);

/// Renders in infix notation, e.g. "2*Ti*Tj + N - 1".
std::string to_string(const Expr& e);

/// Decomposition of an expression as `a*x + b` with `a`, `b` free of `x`.
struct Linear {
  Expr coeff;   ///< a
  Expr offset;  ///< b
};

/// If `e` is linear in symbol `x` (after normalization), returns {a, b} such
/// that e == a*x + b and neither contains x; otherwise nullopt. Min/Max/Div
/// nodes containing x are treated as non-linear.
std::optional<Linear> as_linear(const Expr& e, const std::string& x);

}  // namespace sdlo::sym
