#include "ir/program.hpp"

#include <algorithm>
#include <set>

#include "support/check.hpp"
#include "support/string_util.hpp"

namespace sdlo::ir {

Program::Program() {
  Node root;
  root.parent = -1;
  root.seq_no = 0;
  nodes_.push_back(std::move(root));
}

const Program::Node& Program::node(NodeId n) const {
  SDLO_EXPECTS(n >= 0 && static_cast<std::size_t>(n) < nodes_.size());
  return nodes_[static_cast<std::size_t>(n)];
}

Program::Node& Program::node(NodeId n) {
  SDLO_EXPECTS(n >= 0 && static_cast<std::size_t>(n) < nodes_.size());
  return nodes_[static_cast<std::size_t>(n)];
}

NodeId Program::add_band(NodeId parent, std::vector<Loop> loops) {
  SDLO_CHECK(!validated_, "cannot mutate a validated Program");
  SDLO_CHECK(!is_statement(parent), "cannot nest under a statement");
  SDLO_CHECK(!loops.empty() || parent == kRoot,
             "empty band only permitted at the root");
  for (const auto& l : loops) {
    SDLO_CHECK(is_identifier(l.var), "loop variable must be an identifier");
  }
  Node b;
  b.loops = std::move(loops);
  b.parent = parent;
  b.seq_no = static_cast<int>(node(parent).children.size());
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(b));
  node(parent).children.push_back(id);
  return id;
}

NodeId Program::add_statement(NodeId parent, Statement stmt) {
  SDLO_CHECK(!validated_, "cannot mutate a validated Program");
  SDLO_CHECK(!is_statement(parent), "cannot nest under a statement");
  SDLO_CHECK(!stmt.accesses.empty(), "statement must access something");
  Node s;
  s.stmt = std::move(stmt);
  s.parent = parent;
  s.seq_no = static_cast<int>(node(parent).children.size());
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(s));
  node(parent).children.push_back(id);
  return id;
}

bool Program::is_statement(NodeId n) const { return node(n).stmt.has_value(); }

const Statement& Program::statement(NodeId n) const {
  SDLO_EXPECTS(is_statement(n));
  return *node(n).stmt;
}

const std::vector<Loop>& Program::band_loops(NodeId n) const {
  SDLO_EXPECTS(!is_statement(n));
  return node(n).loops;
}

NodeId Program::parent(NodeId n) const { return node(n).parent; }

const std::vector<NodeId>& Program::children(NodeId n) const {
  return node(n).children;
}

int Program::seq_no(NodeId n) const { return node(n).seq_no; }

std::vector<PathLoop> Program::path_loops(NodeId n) const {
  std::vector<NodeId> chain;
  for (NodeId cur = n; cur != -1; cur = node(cur).parent) {
    chain.push_back(cur);
  }
  std::reverse(chain.begin(), chain.end());
  std::vector<PathLoop> out;
  for (NodeId b : chain) {
    if (is_statement(b)) continue;
    const auto& loops = node(b).loops;
    for (std::size_t i = 0; i < loops.size(); ++i) {
      out.push_back(PathLoop{loops[i].var, loops[i].extent, b,
                             static_cast<int>(i)});
    }
  }
  return out;
}

void Program::collect_statements(NodeId n, std::vector<NodeId>& out) const {
  if (is_statement(n)) {
    out.push_back(n);
    return;
  }
  for (NodeId c : node(n).children) collect_statements(c, out);
}

const std::vector<NodeId>& Program::statements_in_order() const {
  SDLO_CHECK(validated_, "Program must be validated first");
  return stmt_order_;
}

void Program::validate() {
  SDLO_CHECK(!validated_, "validate() called twice");

  stmt_order_.clear();
  collect_statements(kRoot, stmt_order_);
  if (stmt_order_.empty()) {
    throw UnsupportedProgram("program contains no statements");
  }

  // Bands must not be empty leaves; loop vars unique along each path and
  // globally extent-consistent.
  for (NodeId n = 0; n < static_cast<NodeId>(nodes_.size()); ++n) {
    if (is_statement(n)) continue;
    if (node(n).children.empty() && n != kRoot) {
      throw UnsupportedProgram("band node with no children");
    }
    for (const auto& l : node(n).loops) {
      auto [it, inserted] = var_extent_.emplace(l.var, l.extent);
      if (inserted) {
        var_order_.push_back(l.var);
      } else if (!it->second.equals(l.extent)) {
        throw UnsupportedProgram("loop variable '" + l.var +
                                 "' re-declared with a different extent");
      }
    }
  }
  for (NodeId s : stmt_order_) {
    std::set<std::string> on_path;
    for (const auto& pl : path_loops(s)) {
      if (!on_path.insert(pl.var).second) {
        throw UnsupportedProgram("loop variable '" + pl.var +
                                 "' repeated along one nesting path");
      }
    }
    // Each reference: subscript vars enclose the statement, each used once.
    for (std::size_t a = 0; a < statement(s).accesses.size(); ++a) {
      const ArrayRef& ref = statement(s).accesses[a];
      if (!is_identifier(ref.array)) {
        throw UnsupportedProgram("array name must be an identifier");
      }
      std::set<std::string> used;
      for (const auto& sub : ref.subscripts) {
        if (sub.vars.empty()) {
          throw UnsupportedProgram("empty subscript in reference to '" +
                                   ref.array + "'");
        }
        for (const auto& v : sub.vars) {
          if (on_path.count(v) == 0) {
            throw UnsupportedProgram(
                "subscript variable '" + v + "' of array '" + ref.array +
                "' is not an enclosing loop of statement " +
                statement(s).label);
          }
          if (!used.insert(v).second) {
            throw UnsupportedProgram("variable '" + v +
                                     "' used twice in one reference to '" +
                                     ref.array + "'");
          }
        }
      }
      // Record / check the per-array common structure.
      auto [it, inserted] = array_shape_.emplace(ref.array, ref.subscripts);
      if (inserted) {
        array_order_.push_back(ref.array);
        std::vector<std::string> vars;
        for (const auto& sub : ref.subscripts) {
          vars.insert(vars.end(), sub.vars.begin(), sub.vars.end());
        }
        array_vars_[ref.array] = std::move(vars);
      } else if (!(it->second ==
                   std::vector<Subscript>(ref.subscripts))) {
        throw UnsupportedProgram(
            "array '" + ref.array +
            "' referenced with two different subscript structures; the "
            "model's element-identity rule requires a single structure");
      }
      array_refs_[ref.array].push_back(
          AccessSite{s, static_cast<int>(a)});
    }
  }
  validated_ = true;
}

const Expr& Program::extent_of(const std::string& var) const {
  SDLO_CHECK(validated_, "Program must be validated first");
  auto it = var_extent_.find(var);
  SDLO_CHECK(it != var_extent_.end(), "unknown loop variable: " + var);
  return it->second;
}

const std::vector<std::string>& Program::variables() const {
  SDLO_CHECK(validated_, "Program must be validated first");
  return var_order_;
}

const std::vector<std::string>& Program::arrays() const {
  SDLO_CHECK(validated_, "Program must be validated first");
  return array_order_;
}

const std::vector<Subscript>& Program::array_shape(
    const std::string& array) const {
  SDLO_CHECK(validated_, "Program must be validated first");
  auto it = array_shape_.find(array);
  SDLO_CHECK(it != array_shape_.end(), "unknown array: " + array);
  return it->second;
}

const std::vector<AccessSite>& Program::refs_to(
    const std::string& array) const {
  SDLO_CHECK(validated_, "Program must be validated first");
  auto it = array_refs_.find(array);
  SDLO_CHECK(it != array_refs_.end(), "unknown array: " + array);
  return it->second;
}

Expr Program::array_size(const std::string& array) const {
  Expr size = Expr::constant(1);
  for (const auto& sub : array_shape(array)) {
    for (const auto& v : sub.vars) {
      size = size * extent_of(v);
    }
  }
  return size;
}

const std::vector<std::string>& Program::array_vars(
    const std::string& array) const {
  SDLO_CHECK(validated_, "Program must be validated first");
  auto it = array_vars_.find(array);
  SDLO_CHECK(it != array_vars_.end(), "unknown array: " + array);
  return it->second;
}

Expr Program::instances_of(NodeId n) const {
  SDLO_CHECK(validated_, "Program must be validated first");
  Expr count = Expr::constant(1);
  for (const auto& pl : path_loops(n)) {
    count = count * pl.extent;
  }
  return count;
}

Expr Program::total_accesses() const {
  SDLO_CHECK(validated_, "Program must be validated first");
  Expr total = Expr::constant(0);
  for (NodeId s : stmt_order_) {
    total = total + instances_of(s) *
                        Expr::constant(static_cast<std::int64_t>(
                            statement(s).accesses.size()));
  }
  return total;
}

namespace {

bool refs_equal(const ArrayRef& a, const ArrayRef& b) {
  return a.array == b.array && a.mode == b.mode &&
         a.subscripts == b.subscripts;
}

bool nodes_equal(const Program& a, NodeId na, const Program& b, NodeId nb) {
  if (a.is_statement(na) != b.is_statement(nb)) return false;
  if (a.is_statement(na)) {
    const Statement& sa = a.statement(na);
    const Statement& sb = b.statement(nb);
    if (sa.label != sb.label) return false;
    if (sa.accesses.size() != sb.accesses.size()) return false;
    for (std::size_t i = 0; i < sa.accesses.size(); ++i) {
      if (!refs_equal(sa.accesses[i], sb.accesses[i])) return false;
    }
    return true;
  }
  const auto& la = a.band_loops(na);
  const auto& lb = b.band_loops(nb);
  if (la.size() != lb.size()) return false;
  for (std::size_t i = 0; i < la.size(); ++i) {
    if (la[i].var != lb[i].var) return false;
    if (!la[i].extent.equals(lb[i].extent)) return false;
  }
  const auto& ca = a.children(na);
  const auto& cb = b.children(nb);
  if (ca.size() != cb.size()) return false;
  for (std::size_t i = 0; i < ca.size(); ++i) {
    if (!nodes_equal(a, ca[i], b, cb[i])) return false;
  }
  return true;
}

// Splitmix64 finalizer: cheap, well-distributed 64-bit mixing.
std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

std::uint64_t hash_string(std::uint64_t h, const std::string& s) {
  h = hash_mix(h, s.size());
  for (unsigned char c : s) h = hash_mix(h, c);
  return h;
}

// Mirrors nodes_equal field for field; every branch nodes_equal compares
// feeds a distinct tag or length into the hash so hash-equality tracks
// structural equality.
std::uint64_t node_hash(const Program& p, NodeId n, std::uint64_t h) {
  h = hash_mix(h, p.is_statement(n) ? 0x51a7ULL : 0xba2dULL);
  if (p.is_statement(n)) {
    const Statement& s = p.statement(n);
    h = hash_string(h, s.label);
    h = hash_mix(h, s.accesses.size());
    for (const ArrayRef& ref : s.accesses) {
      h = hash_string(h, ref.array);
      h = hash_mix(h, ref.mode == AccessMode::kWrite ? 1 : 0);
      h = hash_mix(h, ref.subscripts.size());
      for (const Subscript& sub : ref.subscripts) {
        h = hash_mix(h, sub.vars.size());
        for (const std::string& v : sub.vars) h = hash_string(h, v);
      }
    }
    return h;
  }
  const auto& loops = p.band_loops(n);
  h = hash_mix(h, loops.size());
  for (const Loop& l : loops) {
    h = hash_string(h, l.var);
    // Canonical rendering: Expr::equals-equal extents print identically.
    h = hash_string(h, sym::to_string(l.extent));
  }
  const auto& kids = p.children(n);
  h = hash_mix(h, kids.size());
  for (NodeId c : kids) h = node_hash(p, c, h);
  return h;
}

}  // namespace

bool structurally_equal(const Program& a, const Program& b) {
  return nodes_equal(a, Program::kRoot, b, Program::kRoot);
}

std::uint64_t structural_hash(const Program& p) {
  return node_hash(p, Program::kRoot, 0x5d10c0de00000001ULL);
}

}  // namespace sdlo::ir
