#include "ir/transforms.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "support/check.hpp"

namespace sdlo::ir {

GalleryProgram tile_nest(const GalleryProgram& g,
                         const std::vector<TileSpec>& specs) {
  const Program& p = g.prog;
  SDLO_CHECK(p.children(Program::kRoot).size() == 1,
             "tile_nest requires a single nest");
  const NodeId band = p.children(Program::kRoot)[0];
  SDLO_CHECK(!p.is_statement(band), "tile_nest requires a loop band");
  SDLO_CHECK(p.children(band).size() == 1 &&
                 p.is_statement(p.children(band)[0]),
             "tile_nest requires a perfect nest with one statement");

  std::map<std::string, std::string> tile_sym_of;  // var -> tile symbol
  for (const auto& s : specs) tile_sym_of[s.var] = s.tile_sym;

  const auto& loops = p.band_loops(band);
  for (const auto& s : specs) {
    const bool found = std::any_of(loops.begin(), loops.end(),
                                   [&](const Loop& l) {
                                     return l.var == s.var;
                                   });
    SDLO_CHECK(found, "tile_nest: no loop named " + s.var);
  }

  GalleryProgram out;
  out.bounds = g.bounds;
  out.tiles = g.tiles;
  out.tile_of = g.tile_of;

  std::vector<Loop> tile_loops;
  std::vector<Loop> intra_loops;
  for (const auto& l : loops) {
    auto it = tile_sym_of.find(l.var);
    if (it == tile_sym_of.end()) {
      intra_loops.push_back(l);
      continue;
    }
    const Expr tile = Expr::symbol(it->second);
    tile_loops.push_back(Loop{l.var + "T", sym::floor_div(l.extent, tile)});
    intra_loops.push_back(Loop{l.var + "I", tile});
    out.tiles.push_back(it->second);
    // The tile divides the loop extent; when the extent is itself a bound
    // symbol we can record the divisibility pair for make_env().
    if (l.extent.kind() == sym::Kind::kSymbol) {
      out.tile_of[it->second] = l.extent.symbol_name();
    }
  }
  std::vector<Loop> all_loops = tile_loops;
  all_loops.insert(all_loops.end(), intra_loops.begin(), intra_loops.end());

  NodeId new_band = out.prog.add_band(Program::kRoot, std::move(all_loops));
  Statement s = p.statement(p.children(band)[0]);
  for (auto& access : s.accesses) {
    for (auto& subscript : access.subscripts) {
      Subscript rewritten;
      for (const auto& v : subscript.vars) {
        if (tile_sym_of.count(v) != 0) {
          rewritten.vars.push_back(v + "T");
          rewritten.vars.push_back(v + "I");
        } else {
          rewritten.vars.push_back(v);
        }
      }
      subscript = std::move(rewritten);
    }
  }
  out.prog.add_statement(new_band, std::move(s));
  out.prog.validate();
  return out;
}

Program interchange(const Program& p, NodeId band,
                    const std::vector<int>& perm) {
  SDLO_CHECK(!p.is_statement(band), "interchange target must be a band");
  const auto& loops = p.band_loops(band);
  SDLO_CHECK(perm.size() == loops.size(), "permutation arity mismatch");
  std::set<int> seen(perm.begin(), perm.end());
  SDLO_CHECK(seen.size() == perm.size() &&
                 *seen.begin() == 0 &&
                 *seen.rbegin() == static_cast<int>(perm.size()) - 1,
             "perm must be a permutation of 0..k-1");

  Program out;
  // Rebuild with a custom walk so we can spot the target band.
  auto walk = [&](NodeId src_node, NodeId dst_parent, auto&& self) -> void {
    if (p.is_statement(src_node)) {
      out.add_statement(dst_parent, p.statement(src_node));
      return;
    }
    NodeId here = dst_parent;
    if (src_node != Program::kRoot) {
      std::vector<Loop> ls = p.band_loops(src_node);
      if (src_node == band) {
        std::vector<Loop> permuted;
        permuted.reserve(ls.size());
        for (int idx : perm) {
          permuted.push_back(ls[static_cast<std::size_t>(idx)]);
        }
        ls = std::move(permuted);
      }
      here = out.add_band(dst_parent, std::move(ls));
    }
    for (NodeId c : p.children(src_node)) self(c, here, self);
  };
  walk(Program::kRoot, Program::kRoot, walk);
  out.validate();
  return out;
}

}  // namespace sdlo::ir
