#include "ir/printer.hpp"

#include <ostream>
#include <sstream>

namespace sdlo::ir {

namespace {

std::string band_header(const Program& p, NodeId n) {
  std::ostringstream os;
  os << "for ";
  const auto& loops = p.band_loops(n);
  for (std::size_t i = 0; i < loops.size(); ++i) {
    if (i != 0) os << ", ";
    os << loops[i].var << "<" << sym::to_string(loops[i].extent) << ">";
  }
  return os.str();
}

std::string stmt_text(const Statement& s) {
  std::ostringstream os;
  os << s.label << ": ";
  // Renders "W += r1 * r2" when the statement reads its own target (an
  // accumulation), "W = 0" for pure initializations, "W = r1 * r2"
  // otherwise, matching the parser's input syntax.
  const ArrayRef* write = nullptr;
  bool self_read = false;
  for (const auto& a : s.accesses) {
    if (a.mode == AccessMode::kWrite) write = &a;
  }
  std::ostringstream reads;
  bool first_read = true;
  for (const auto& a : s.accesses) {
    if (a.mode == AccessMode::kWrite) continue;
    if (write != nullptr && a.array == write->array &&
        a.subscripts == write->subscripts) {
      self_read = true;
      continue;
    }
    if (!first_read) reads << " * ";
    first_read = false;
    reads << ref_to_string(a);
  }
  if (write == nullptr) {
    os << "use " << reads.str();
    return os.str();
  }
  os << ref_to_string(*write) << (self_read ? " += " : " = ");
  os << (first_read ? "0" : reads.str());
  return os.str();
}

void print_node(const Program& p, NodeId n, int depth, std::ostream& os) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  if (p.is_statement(n)) {
    os << indent << stmt_text(p.statement(n)) << "\n";
    return;
  }
  const bool is_root = (n == Program::kRoot);
  if (!is_root) {
    os << indent << band_header(p, n) << " {\n";
  }
  for (NodeId c : p.children(n)) {
    print_node(p, c, is_root ? depth : depth + 1, os);
  }
  if (!is_root) os << indent << "}\n";
}

}  // namespace

std::string ref_to_string(const ArrayRef& ref) {
  std::ostringstream os;
  os << ref.array;
  if (!ref.subscripts.empty()) {
    os << "[";
    for (std::size_t d = 0; d < ref.subscripts.size(); ++d) {
      if (d != 0) os << ",";
      const auto& vars = ref.subscripts[d].vars;
      for (std::size_t v = 0; v < vars.size(); ++v) {
        if (v != 0) os << "+";
        os << vars[v];
      }
    }
    os << "]";
  }
  return os.str();
}

void print_code(const Program& p, std::ostream& os) {
  print_node(p, Program::kRoot, 0, os);
}

std::string to_code_string(const Program& p) {
  std::ostringstream os;
  print_code(p, os);
  return os.str();
}

void print_tree(const Program& p, std::ostream& os) {
  auto walk = [&](NodeId n, int depth, auto&& self) -> void {
    const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
    if (p.is_statement(n)) {
      os << indent << "stmt " << p.statement(n).label << " [seq "
         << p.seq_no(n) << "]:";
      for (const auto& a : p.statement(n).accesses) {
        os << " " << ref_to_string(a)
           << (a.mode == AccessMode::kWrite ? "(w)" : "(r)");
      }
      os << "\n";
    } else {
      os << indent << (n == Program::kRoot ? "root" : band_header(p, n))
         << " [seq " << p.seq_no(n) << "]\n";
      for (NodeId c : p.children(n)) self(c, depth + 1, self);
    }
  };
  walk(Program::kRoot, 0, walk);
}

}  // namespace sdlo::ir
