// Loop-nest intermediate representation.
//
// A Program is the tree of Fig. 3/Fig. 7 of the paper: interior nodes are
// *bands* (one or more perfectly-nested loops), leaves are *statements*; the
// children of a band execute in sequence inside each iteration of the band's
// loops. This represents exactly the class of imperfectly nested loops the
// TCE fusion step emits (§2): rectangular loops with symbolic extents, array
// subscripts that are loop indices or tiled index pairs (iT*Ti + iI).
//
// Conventions:
//  * Loops are normalized to iterate var = 0 .. extent-1 (the paper writes
//    1..N; only extents matter to the model).
//  * A subscript is an ordered list of loop variables composed in mixed
//    radix: subscript {a, b} with extent(b) = Eb denotes value a*Eb + b.
//    Untiled subscripts are singleton lists.
//  * Loop variable names are unique along any root-to-leaf path, but the
//    SAME name may (and for reuse analysis, should) recur in sibling
//    subtrees: two references to array T with subscript variable "iI" denote
//    the same element exactly when their "iI" values agree, which is how
//    TCE tile buffers (T[iI,nI] written in one inner nest, read in the next)
//    are expressed.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "symbolic/expr.hpp"

namespace sdlo::ir {

using sym::Expr;

/// One loop of a band: `for var in [0, extent)`.
struct Loop {
  std::string var;
  Expr extent;
};

/// A (possibly tiled) array subscript: mixed-radix composition of loop
/// variables, outermost digit first. {"iT","iI"} denotes iT*extent(iI)+iI.
struct Subscript {
  std::vector<std::string> vars;

  bool operator==(const Subscript& o) const { return vars == o.vars; }
};

/// Whether an access reads or writes the element (both occupy one trace
/// slot; the model treats them uniformly, as does a cache).
enum class AccessMode : std::uint8_t { kRead, kWrite };

/// A single array access site within a statement.
struct ArrayRef {
  std::string array;
  std::vector<Subscript> subscripts;
  AccessMode mode = AccessMode::kRead;

  /// Number of array dimensions.
  std::size_t rank() const { return subscripts.size(); }
};

/// A statement: an ordered list of array accesses (reads first, then the
/// write, in trace order). The computation performed is irrelevant to the
/// cache model; kernels implement the arithmetic separately.
struct Statement {
  std::string label;
  std::vector<ArrayRef> accesses;
};

/// Identifier of a node in the Program tree. The root band is node 0.
using NodeId = std::int32_t;

/// A loop on the path from the root to some statement.
struct PathLoop {
  std::string var;
  Expr extent;
  NodeId band = 0;   ///< band node declaring this loop
  int index_in_band = 0;
};

/// Location of one access site: (statement node, access index within it).
struct AccessSite {
  NodeId stmt = 0;
  int access = 0;

  bool operator==(const AccessSite& o) const {
    return stmt == o.stmt && access == o.access;
  }
  bool operator<(const AccessSite& o) const {
    return stmt != o.stmt ? stmt < o.stmt : access < o.access;
  }
};

/// The imperfectly nested loop tree. Build with add_band/add_statement, then
/// call validate() once; analysis queries require a validated program.
class Program {
 public:
  static constexpr NodeId kRoot = 0;

  Program();

  /// Appends a band under `parent` (must not be a statement). Bands with an
  /// empty loop list are permitted only at the root.
  NodeId add_band(NodeId parent, std::vector<Loop> loops);

  /// Appends a statement leaf under `parent`.
  NodeId add_statement(NodeId parent, Statement stmt);

  // ----- structure queries ------------------------------------------------

  bool is_statement(NodeId n) const;
  const Statement& statement(NodeId n) const;
  const std::vector<Loop>& band_loops(NodeId n) const;
  NodeId parent(NodeId n) const;
  const std::vector<NodeId>& children(NodeId n) const;
  /// Index of `n` among its siblings (the paper's SeqNo).
  int seq_no(NodeId n) const;
  std::size_t num_nodes() const { return nodes_.size(); }

  /// Loops enclosing node `n`, outermost first (includes n's own loops when
  /// n is a band).
  std::vector<PathLoop> path_loops(NodeId n) const;

  /// All statement leaves in program (execution) order.
  const std::vector<NodeId>& statements_in_order() const;

  // ----- validated-class queries ------------------------------------------

  /// Checks the constrained-class rules and freezes derived tables; throws
  /// UnsupportedProgram on violation. Must be called before the queries
  /// below, and after the last mutation.
  void validate();
  bool validated() const { return validated_; }

  /// Extent of a loop variable (consistent across the whole tree).
  const Expr& extent_of(const std::string& var) const;
  /// All loop variable names, in first-appearance order.
  const std::vector<std::string>& variables() const;

  /// All array names, in first-appearance order.
  const std::vector<std::string>& arrays() const;
  /// Common subscript structure of all references to `array`.
  const std::vector<Subscript>& array_shape(const std::string& array) const;
  /// Every access site touching `array`, in program order.
  const std::vector<AccessSite>& refs_to(const std::string& array) const;
  /// Number of elements of `array` (product of mixed-radix dim extents).
  Expr array_size(const std::string& array) const;
  /// Distinct loop variables appearing in `array`'s subscripts.
  const std::vector<std::string>& array_vars(const std::string& array) const;

  /// Symbolic number of dynamic instances of statement `n`.
  Expr instances_of(NodeId n) const;

  /// Symbolic total number of accesses executed by the whole program.
  Expr total_accesses() const;

 private:
  struct Node {
    std::vector<Loop> loops;
    std::optional<Statement> stmt;
    NodeId parent = -1;
    int seq_no = 0;
    std::vector<NodeId> children;
  };

  const Node& node(NodeId n) const;
  Node& node(NodeId n);
  void collect_statements(NodeId n, std::vector<NodeId>& out) const;

  std::vector<Node> nodes_;
  bool validated_ = false;

  // Derived (filled by validate()).
  std::vector<NodeId> stmt_order_;
  std::map<std::string, Expr> var_extent_;
  std::vector<std::string> var_order_;
  std::vector<std::string> array_order_;
  std::map<std::string, std::vector<Subscript>> array_shape_;
  std::map<std::string, std::vector<AccessSite>> array_refs_;
  std::map<std::string, std::vector<std::string>> array_vars_;
};

/// Structural equality of two program trees: identical shapes, loop
/// variables and extents (by Expr::equals), statement labels, and access
/// lists (array, subscripts, mode, order). Independent of validation state.
/// This is the identity the parser↔printer round-trip guarantee is stated
/// in: parse_program(to_code_string(p)) is structurally equal to p.
bool structurally_equal(const Program& a, const Program& b);

/// Order-sensitive hash over exactly the structure structurally_equal
/// compares: node kinds, loop variables and extents (via the canonical
/// sym::to_string rendering, so Expr::equals-equal extents hash alike),
/// statement labels, and access lists. Guarantee: structurally_equal(a, b)
/// implies structural_hash(a) == structural_hash(b). Collisions are
/// possible but unlikely (64-bit splitmix-style mixing); use the hash as a
/// fast filter in front of structurally_equal, never as a replacement.
/// Independent of validation state.
std::uint64_t structural_hash(const Program& p);

}  // namespace sdlo::ir
