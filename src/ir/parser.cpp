#include "ir/parser.hpp"

#include <cctype>
#include <sstream>
#include <vector>

#include "support/check.hpp"
#include "support/string_util.hpp"

namespace sdlo::ir {

namespace {

using sym::Expr;

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class Tok : std::uint8_t {
  kIdent, kInt, kFor, kLBrace, kRBrace, kLBracket, kRBracket, kLParen,
  kRParen, kComma, kColon, kPlus, kMinus, kStar, kSlash, kLess, kGreater,
  kAssign, kPlusAssign, kEnd,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) { tokenize(text); }

  const Token& peek() const { return tokens_[pos_]; }
  Token next() { return tokens_[pos_ == tokens_.size() - 1 ? pos_ : pos_++]; }
  bool accept(Tok k) {
    if (peek().kind != k) return false;
    next();
    return true;
  }
  Token expect(Tok k, const char* what) {
    if (peek().kind != k) fail(std::string("expected ") + what);
    return next();
  }
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError("line " + std::to_string(peek().line) + ": " + msg +
                     " (got '" + (peek().kind == Tok::kEnd ? "<end>"
                                                           : peek().text) +
                     "')");
  }

 private:
  void push(Tok k, std::string text, int line) {
    tokens_.push_back(Token{k, std::move(text), line});
  }

  void tokenize(const std::string& text) {
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = text.size();
    while (i < n) {
      const char c = text[i];
      if (c == '\n') {
        ++line;
        ++i;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '#') {
        while (i < n && text[i] != '\n') ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t j = i;
        while (j < n && (std::isalnum(static_cast<unsigned char>(text[j])) ||
                         text[j] == '_')) {
          ++j;
        }
        std::string word = text.substr(i, j - i);
        const Tok kind = (word == "for") ? Tok::kFor : Tok::kIdent;
        push(kind, std::move(word), line);
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        std::size_t j = i;
        while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) {
          ++j;
        }
        push(Tok::kInt, text.substr(i, j - i), line);
        i = j;
        continue;
      }
      if (c == '+' && i + 1 < n && text[i + 1] == '=') {
        push(Tok::kPlusAssign, "+=", line);
        i += 2;
        continue;
      }
      switch (c) {
        case '{': push(Tok::kLBrace, "{", line); break;
        case '}': push(Tok::kRBrace, "}", line); break;
        case '[': push(Tok::kLBracket, "[", line); break;
        case ']': push(Tok::kRBracket, "]", line); break;
        case '(': push(Tok::kLParen, "(", line); break;
        case ')': push(Tok::kRParen, ")", line); break;
        case ',': push(Tok::kComma, ",", line); break;
        case ':': push(Tok::kColon, ":", line); break;
        case '+': push(Tok::kPlus, "+", line); break;
        case '-': push(Tok::kMinus, "-", line); break;
        case '*': push(Tok::kStar, "*", line); break;
        case '/': push(Tok::kSlash, "/", line); break;
        case '<': push(Tok::kLess, "<", line); break;
        case '>': push(Tok::kGreater, ">", line); break;
        case '=': push(Tok::kAssign, "=", line); break;
        default:
          throw ParseError("line " + std::to_string(line) +
                           ": unexpected character '" + std::string(1, c) +
                           "'");
      }
      ++i;
    }
    push(Tok::kEnd, "", line);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Expression parser (precedence climbing: + - over *; unary -).
// ---------------------------------------------------------------------------

Expr parse_additive(Lexer& lx);

Expr parse_primary(Lexer& lx) {
  if (lx.peek().kind == Tok::kInt) {
    return Expr::constant(parse_int(lx.next().text));
  }
  if (lx.accept(Tok::kMinus)) {
    return -parse_primary(lx);
  }
  if (lx.accept(Tok::kLParen)) {
    Expr e = parse_additive(lx);
    lx.expect(Tok::kRParen, "')'");
    return e;
  }
  if (lx.peek().kind == Tok::kIdent) {
    const std::string name = lx.next().text;
    if ((name == "floor" || name == "ceil" || name == "min" ||
         name == "max") &&
        lx.peek().kind == Tok::kLParen) {
      lx.expect(Tok::kLParen, "'('");
      Expr a = parse_additive(lx);
      if (name == "floor" || name == "ceil") {
        lx.expect(Tok::kSlash, "'/'");
        Expr b = parse_additive(lx);
        lx.expect(Tok::kRParen, "')'");
        return name == "floor" ? sym::floor_div(a, b) : sym::ceil_div(a, b);
      }
      lx.expect(Tok::kComma, "','");
      Expr b = parse_additive(lx);
      lx.expect(Tok::kRParen, "')'");
      return name == "min" ? sym::min(a, b) : sym::max(a, b);
    }
    return Expr::symbol(name);
  }
  lx.fail("expected expression");
}

Expr parse_multiplicative(Lexer& lx) {
  Expr e = parse_primary(lx);
  while (lx.accept(Tok::kStar)) {
    e = e * parse_primary(lx);
  }
  return e;
}

Expr parse_additive(Lexer& lx) {
  Expr e = parse_multiplicative(lx);
  for (;;) {
    if (lx.accept(Tok::kPlus)) {
      e = e + parse_multiplicative(lx);
    } else if (lx.accept(Tok::kMinus)) {
      e = e - parse_multiplicative(lx);
    } else {
      return e;
    }
  }
}

// ---------------------------------------------------------------------------
// Program parser
// ---------------------------------------------------------------------------

ArrayRef parse_ref(Lexer& lx, AccessMode mode) {
  ArrayRef ref;
  ref.mode = mode;
  ref.array = lx.expect(Tok::kIdent, "array name").text;
  if (lx.accept(Tok::kLBracket)) {
    do {
      Subscript s;
      s.vars.push_back(lx.expect(Tok::kIdent, "subscript variable").text);
      while (lx.accept(Tok::kPlus)) {
        s.vars.push_back(lx.expect(Tok::kIdent, "subscript variable").text);
      }
      ref.subscripts.push_back(std::move(s));
    } while (lx.accept(Tok::kComma));
    lx.expect(Tok::kRBracket, "']'");
  }
  return ref;
}

void parse_items(Lexer& lx, Program& prog, NodeId parent);

void parse_band(Lexer& lx, Program& prog, NodeId parent) {
  lx.expect(Tok::kFor, "'for'");
  std::vector<Loop> loops;
  do {
    const std::string var = lx.expect(Tok::kIdent, "loop variable").text;
    lx.expect(Tok::kLess, "'<extent>'");
    Expr extent = parse_additive(lx);
    lx.expect(Tok::kGreater, "'>'");
    loops.push_back(Loop{var, extent});
  } while (lx.accept(Tok::kComma));
  lx.expect(Tok::kLBrace, "'{'");
  NodeId band = prog.add_band(parent, std::move(loops));
  parse_items(lx, prog, band);
  lx.expect(Tok::kRBrace, "'}'");
}

void parse_statement(Lexer& lx, Program& prog, NodeId parent) {
  Statement stmt;
  stmt.label = lx.expect(Tok::kIdent, "statement label").text;
  lx.expect(Tok::kColon, "':'");
  ArrayRef target = parse_ref(lx, AccessMode::kWrite);
  const bool accumulate = (lx.peek().kind == Tok::kPlusAssign);
  if (!lx.accept(Tok::kPlusAssign)) lx.expect(Tok::kAssign, "'=' or '+='");

  // rhs: "0" or ref ('*' ref)*.
  if (lx.peek().kind == Tok::kInt) {
    lx.next();  // literal init; no reads
  } else {
    stmt.accesses.push_back(parse_ref(lx, AccessMode::kRead));
    while (lx.accept(Tok::kStar)) {
      stmt.accesses.push_back(parse_ref(lx, AccessMode::kRead));
    }
  }
  if (accumulate) {
    ArrayRef self_read = target;
    self_read.mode = AccessMode::kRead;
    stmt.accesses.push_back(std::move(self_read));
  }
  stmt.accesses.push_back(std::move(target));
  prog.add_statement(parent, std::move(stmt));
}

void parse_items(Lexer& lx, Program& prog, NodeId parent) {
  for (;;) {
    switch (lx.peek().kind) {
      case Tok::kFor:
        parse_band(lx, prog, parent);
        break;
      case Tok::kIdent:
        parse_statement(lx, prog, parent);
        break;
      default:
        return;
    }
  }
}

}  // namespace

Program parse_program(const std::string& text) {
  Lexer lx(text);
  Program prog;
  parse_items(lx, prog, Program::kRoot);
  if (lx.peek().kind != Tok::kEnd) lx.fail("unexpected trailing input");
  prog.validate();
  return prog;
}

sym::Expr parse_expr(const std::string& text) {
  Lexer lx(text);
  Expr e = parse_additive(lx);
  if (lx.peek().kind != Tok::kEnd) lx.fail("unexpected trailing input");
  return e;
}

}  // namespace sdlo::ir
