#include "ir/parser.hpp"

#include <cctype>
#include <sstream>
#include <utility>
#include <vector>

#include "support/check.hpp"
#include "support/string_util.hpp"

namespace sdlo::ir {

namespace {

using sym::Expr;

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class Tok : std::uint8_t {
  kIdent, kInt, kFor, kLBrace, kRBrace, kLBracket, kRBracket, kLParen,
  kRParen, kComma, kColon, kPlus, kMinus, kStar, kSlash, kLess, kGreater,
  kAssign, kPlusAssign, kEnd,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  SourceLoc loc;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) { tokenize(text); }

  const Token& peek() const { return tokens_[pos_]; }
  Token next() { return tokens_[pos_ == tokens_.size() - 1 ? pos_ : pos_++]; }
  bool accept(Tok k) {
    if (peek().kind != k) return false;
    next();
    return true;
  }
  Token expect(Tok k, const char* what) {
    if (peek().kind != k) fail(std::string("expected ") + what);
    return next();
  }
  [[noreturn]] void fail(const std::string& msg) const {
    const SourceLoc at = peek().loc;
    throw ParseError("line " + std::to_string(at.line) + ":" +
                         std::to_string(at.column) + ": " + msg + " (got '" +
                         (peek().kind == Tok::kEnd ? "<end>" : peek().text) +
                         "')",
                     at);
  }

 private:
  void push(Tok k, std::string text, SourceLoc loc) {
    tokens_.push_back(Token{k, std::move(text), loc});
  }

  void tokenize(const std::string& text) {
    int line = 1;
    std::size_t line_start = 0;  // index just past the last '\n'
    std::size_t i = 0;
    const std::size_t n = text.size();
    const auto here = [&](std::size_t at) {
      return SourceLoc{line, static_cast<int>(at - line_start) + 1};
    };
    while (i < n) {
      const char c = text[i];
      if (c == '\n') {
        ++line;
        ++i;
        line_start = i;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '#') {
        while (i < n && text[i] != '\n') ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t j = i;
        while (j < n && (std::isalnum(static_cast<unsigned char>(text[j])) ||
                         text[j] == '_')) {
          ++j;
        }
        std::string word = text.substr(i, j - i);
        const Tok kind = (word == "for") ? Tok::kFor : Tok::kIdent;
        push(kind, std::move(word), here(i));
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        std::size_t j = i;
        while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) {
          ++j;
        }
        push(Tok::kInt, text.substr(i, j - i), here(i));
        i = j;
        continue;
      }
      if (c == '+' && i + 1 < n && text[i + 1] == '=') {
        push(Tok::kPlusAssign, "+=", here(i));
        i += 2;
        continue;
      }
      switch (c) {
        case '{': push(Tok::kLBrace, "{", here(i)); break;
        case '}': push(Tok::kRBrace, "}", here(i)); break;
        case '[': push(Tok::kLBracket, "[", here(i)); break;
        case ']': push(Tok::kRBracket, "]", here(i)); break;
        case '(': push(Tok::kLParen, "(", here(i)); break;
        case ')': push(Tok::kRParen, ")", here(i)); break;
        case ',': push(Tok::kComma, ",", here(i)); break;
        case ':': push(Tok::kColon, ":", here(i)); break;
        case '+': push(Tok::kPlus, "+", here(i)); break;
        case '-': push(Tok::kMinus, "-", here(i)); break;
        case '*': push(Tok::kStar, "*", here(i)); break;
        case '/': push(Tok::kSlash, "/", here(i)); break;
        case '<': push(Tok::kLess, "<", here(i)); break;
        case '>': push(Tok::kGreater, ">", here(i)); break;
        case '=': push(Tok::kAssign, "=", here(i)); break;
        default: {
          const SourceLoc at = here(i);
          throw ParseError("line " + std::to_string(at.line) + ":" +
                               std::to_string(at.column) +
                               ": unexpected character '" + std::string(1, c) +
                               "'",
                           at);
        }
      }
      ++i;
    }
    push(Tok::kEnd, "", here(i));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Expression parser (precedence climbing: + - over *; unary -).
// ---------------------------------------------------------------------------

Expr parse_additive(Lexer& lx);

Expr parse_primary(Lexer& lx) {
  if (lx.peek().kind == Tok::kInt) {
    return Expr::constant(parse_int(lx.next().text));
  }
  if (lx.accept(Tok::kMinus)) {
    return -parse_primary(lx);
  }
  if (lx.accept(Tok::kLParen)) {
    Expr e = parse_additive(lx);
    lx.expect(Tok::kRParen, "')'");
    return e;
  }
  if (lx.peek().kind == Tok::kIdent) {
    const std::string name = lx.next().text;
    if ((name == "floor" || name == "ceil" || name == "min" ||
         name == "max") &&
        lx.peek().kind == Tok::kLParen) {
      lx.expect(Tok::kLParen, "'('");
      Expr a = parse_additive(lx);
      if (name == "floor" || name == "ceil") {
        lx.expect(Tok::kSlash, "'/'");
        Expr b = parse_additive(lx);
        lx.expect(Tok::kRParen, "')'");
        return name == "floor" ? sym::floor_div(a, b) : sym::ceil_div(a, b);
      }
      lx.expect(Tok::kComma, "','");
      Expr b = parse_additive(lx);
      lx.expect(Tok::kRParen, "')'");
      return name == "min" ? sym::min(a, b) : sym::max(a, b);
    }
    return Expr::symbol(name);
  }
  lx.fail("expected expression");
}

Expr parse_multiplicative(Lexer& lx) {
  Expr e = parse_primary(lx);
  while (lx.accept(Tok::kStar)) {
    e = e * parse_primary(lx);
  }
  return e;
}

Expr parse_additive(Lexer& lx) {
  Expr e = parse_multiplicative(lx);
  for (;;) {
    if (lx.accept(Tok::kPlus)) {
      e = e + parse_multiplicative(lx);
    } else if (lx.accept(Tok::kMinus)) {
      e = e - parse_multiplicative(lx);
    } else {
      return e;
    }
  }
}

// ---------------------------------------------------------------------------
// Program parser
// ---------------------------------------------------------------------------

struct LocatedRef {
  ArrayRef ref;
  SourceLoc loc;
};

LocatedRef parse_ref(Lexer& lx, AccessMode mode) {
  LocatedRef out;
  out.ref.mode = mode;
  out.loc = lx.peek().loc;
  out.ref.array = lx.expect(Tok::kIdent, "array name").text;
  if (lx.accept(Tok::kLBracket)) {
    do {
      Subscript s;
      s.vars.push_back(lx.expect(Tok::kIdent, "subscript variable").text);
      while (lx.accept(Tok::kPlus)) {
        s.vars.push_back(lx.expect(Tok::kIdent, "subscript variable").text);
      }
      out.ref.subscripts.push_back(std::move(s));
    } while (lx.accept(Tok::kComma));
    lx.expect(Tok::kRBracket, "']'");
  }
  return out;
}

void parse_items(Lexer& lx, ParsedProgram& out, NodeId parent);

void parse_band(Lexer& lx, ParsedProgram& out, NodeId parent) {
  const SourceLoc at = lx.peek().loc;
  lx.expect(Tok::kFor, "'for'");
  std::vector<Loop> loops;
  do {
    const std::string var = lx.expect(Tok::kIdent, "loop variable").text;
    lx.expect(Tok::kLess, "'<extent>'");
    Expr extent = parse_additive(lx);
    lx.expect(Tok::kGreater, "'>'");
    loops.push_back(Loop{var, extent});
  } while (lx.accept(Tok::kComma));
  lx.expect(Tok::kLBrace, "'{'");
  NodeId band = out.prog.add_band(parent, std::move(loops));
  out.locs.nodes[band] = at;
  parse_items(lx, out, band);
  lx.expect(Tok::kRBrace, "'}'");
}

void parse_statement(Lexer& lx, ParsedProgram& out, NodeId parent) {
  Statement stmt;
  const SourceLoc at = lx.peek().loc;
  stmt.label = lx.expect(Tok::kIdent, "statement label").text;
  lx.expect(Tok::kColon, "':'");
  LocatedRef target = parse_ref(lx, AccessMode::kWrite);
  const bool accumulate = (lx.peek().kind == Tok::kPlusAssign);
  if (!lx.accept(Tok::kPlusAssign)) lx.expect(Tok::kAssign, "'=' or '+='");

  // rhs: "0" or ref ('*' ref)*. Trace order is reads, then the self-read of
  // a `+=` target, then the write — access locations follow that order.
  std::vector<SourceLoc> access_locs;
  if (lx.peek().kind == Tok::kInt) {
    lx.next();  // literal init; no reads
  } else {
    for (;;) {
      LocatedRef read = parse_ref(lx, AccessMode::kRead);
      stmt.accesses.push_back(std::move(read.ref));
      access_locs.push_back(read.loc);
      if (!lx.accept(Tok::kStar)) break;
    }
  }
  if (accumulate) {
    ArrayRef self_read = target.ref;
    self_read.mode = AccessMode::kRead;
    stmt.accesses.push_back(std::move(self_read));
    access_locs.push_back(target.loc);
  }
  stmt.accesses.push_back(std::move(target.ref));
  access_locs.push_back(target.loc);

  const NodeId n = out.prog.add_statement(parent, std::move(stmt));
  out.locs.nodes[n] = at;
  for (int a = 0; a < static_cast<int>(access_locs.size()); ++a) {
    out.locs.accesses[AccessSite{n, a}] = access_locs[static_cast<std::size_t>(a)];
  }
}

void parse_items(Lexer& lx, ParsedProgram& out, NodeId parent) {
  for (;;) {
    switch (lx.peek().kind) {
      case Tok::kFor:
        parse_band(lx, out, parent);
        break;
      case Tok::kIdent:
        parse_statement(lx, out, parent);
        break;
      default:
        return;
    }
  }
}

}  // namespace

ParsedProgram parse_program_located(const std::string& text, bool validate) {
  Lexer lx(text);
  ParsedProgram out;
  parse_items(lx, out, Program::kRoot);
  if (lx.peek().kind != Tok::kEnd) lx.fail("unexpected trailing input");
  if (validate) out.prog.validate();
  return out;
}

Program parse_program(const std::string& text) {
  return parse_program_located(text).prog;
}

sym::Expr parse_expr(const std::string& text) {
  Lexer lx(text);
  Expr e = parse_additive(lx);
  if (lx.peek().kind != Tok::kEnd) lx.fail("unexpected trailing input");
  return e;
}

}  // namespace sdlo::ir
