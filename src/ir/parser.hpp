// Textual front end for loop nests, so examples and tests can state
// programs in a readable form close to the paper's figures:
//
//   for mT<floor(NM/Tm)>, nT<floor(NN/Tn)>, mI<Tm>, nI<Tn> {
//     S2: B[mT+mI, nT+nI] = 0
//   }
//   for iT<floor(NI/Ti)>, nT<floor(NN/Tn)> {
//     for iI<Ti>, nI<Tn> { S5: T[iI,nI] = 0 }
//     for jT<floor(NJ/Tj)>, iI<Ti>, nI<Tn>, jI<Tj> {
//       S7: T[iI,nI] += A[iT+iI, jT+jI] * C2[nT+nI, jT+jI]
//     }
//   }
//
// Grammar (line oriented; '#' starts a comment):
//   band   = "for" var "<" expr ">" ("," var "<" expr ">")* "{"
//   close  = "}"
//   stmt   = LABEL ":" ref ("=" | "+=") rhs
//   rhs    = "0" | ref ("*" ref)*
//   ref    = NAME [ "[" sub ("," sub)* "]" ]
//   sub    = var ("+" var)*
//   expr   = integer arithmetic over symbols with + - * and
//            floor(a/b), ceil(a/b), min(a,b), max(a,b), parentheses
//
// `W = rhs` emits reads of rhs then a write of W; `W += rhs` additionally
// reads W before the write (matching real kernel trace order).
#pragma once

#include <map>
#include <string>

#include "ir/program.hpp"
#include "support/check.hpp"

namespace sdlo::ir {

/// Source positions of program constructs, recorded while parsing so later
/// passes (analysis/diagnostics.hpp) can point at the offending text. Node
/// positions are the `for` / label token; access positions are the array
/// name token. Lookups on constructs the map does not know return the
/// unknown location {0, 0}.
struct SourceMap {
  std::map<NodeId, SourceLoc> nodes;
  std::map<AccessSite, SourceLoc> accesses;

  SourceLoc node_loc(NodeId n) const {
    const auto it = nodes.find(n);
    return it == nodes.end() ? SourceLoc{} : it->second;
  }
  SourceLoc access_loc(const AccessSite& s) const {
    const auto it = accesses.find(s);
    return it == accesses.end() ? SourceLoc{} : it->second;
  }
};

/// A parsed program together with its source positions.
struct ParsedProgram {
  Program prog;
  SourceMap locs;
};

/// Parses program text; throws sdlo::ParseError carrying a line:column
/// SourceLoc on malformed input. With validate=true (the default) the
/// returned Program is validated; validate=false returns the raw tree so
/// the analysis verifier can report constrained-class violations as
/// collected diagnostics instead of a thrown UnsupportedProgram.
ParsedProgram parse_program_located(const std::string& text,
                                    bool validate = true);

/// Parses program text; throws sdlo::ParseError on malformed input. The
/// returned Program is validated.
Program parse_program(const std::string& text);

/// Parses a symbolic integer expression (the `expr` grammar above).
sym::Expr parse_expr(const std::string& text);

}  // namespace sdlo::ir
