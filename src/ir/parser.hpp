// Textual front end for loop nests, so examples and tests can state
// programs in a readable form close to the paper's figures:
//
//   for mT<floor(NM/Tm)>, nT<floor(NN/Tn)>, mI<Tm>, nI<Tn> {
//     S2: B[mT+mI, nT+nI] = 0
//   }
//   for iT<floor(NI/Ti)>, nT<floor(NN/Tn)> {
//     for iI<Ti>, nI<Tn> { S5: T[iI,nI] = 0 }
//     for jT<floor(NJ/Tj)>, iI<Ti>, nI<Tn>, jI<Tj> {
//       S7: T[iI,nI] += A[iT+iI, jT+jI] * C2[nT+nI, jT+jI]
//     }
//   }
//
// Grammar (line oriented; '#' starts a comment):
//   band   = "for" var "<" expr ">" ("," var "<" expr ">")* "{"
//   close  = "}"
//   stmt   = LABEL ":" ref ("=" | "+=") rhs
//   rhs    = "0" | ref ("*" ref)*
//   ref    = NAME [ "[" sub ("," sub)* "]" ]
//   sub    = var ("+" var)*
//   expr   = integer arithmetic over symbols with + - * and
//            floor(a/b), ceil(a/b), min(a,b), max(a,b), parentheses
//
// `W = rhs` emits reads of rhs then a write of W; `W += rhs` additionally
// reads W before the write (matching real kernel trace order).
#pragma once

#include <string>

#include "ir/program.hpp"

namespace sdlo::ir {

/// Parses program text; throws sdlo::ParseError with a line number on
/// malformed input. The returned Program is validated.
Program parse_program(const std::string& text);

/// Parses a symbolic integer expression (the `expr` grammar above).
sym::Expr parse_expr(const std::string& text);

}  // namespace sdlo::ir
