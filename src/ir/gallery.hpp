// Canonical programs from the paper, expressed in the IR.
//
// These mirror the paper's figures exactly:
//  * matmul()            — untiled C(i,k) += A(i,j)*B(j,k)
//  * matmul_tiled()      — Fig. 2: 6-deep tiled matmul (iT,jT,kT,iI,jI,kI)
//  * two_index_fused()   — Fig. 1(c): fused two-index transform, scalar T
//  * two_index_tiled()   — Fig. 6: tiled fused two-index transform
//
// All loops are 0-based with symbolic extents. Tile-loop extents are
// bound/tile quotients; concrete bindings must make them divide exactly
// (checked by make_env).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ir/program.hpp"

namespace sdlo::ir {

/// A gallery program plus the symbol bookkeeping needed to bind it.
struct GalleryProgram {
  Program prog;
  /// Problem-size symbols, e.g. {"N"} or {"NI","NJ","NM","NN"}.
  std::vector<std::string> bounds;
  /// Tile-size symbols in the order used by the paper's tuples,
  /// e.g. {"Ti","Tj","Tk"}; empty for untiled programs.
  std::vector<std::string> tiles;
  /// tile symbol -> the bound symbol it tiles (divisibility constraint).
  std::map<std::string, std::string> tile_of;

  /// Binds bounds and tile sizes into an evaluation environment; validates
  /// positivity and divisibility (throws sdlo::Error on violation). The two
  /// vectors follow the order of `bounds` and `tiles`.
  sym::Env make_env(const std::vector<std::int64_t>& bound_values,
                    const std::vector<std::int64_t>& tile_values) const;
};

/// Untiled matrix multiplication: for i,j,k: C[i,k] += A[i,j]*B[j,k].
/// Bounds {NI,NJ,NK} (use equal values for the paper's square case).
GalleryProgram matmul();

/// Fig. 2: tiled matmul, loop order (iT,jT,kT,iI,jI,kI); tiles {Ti,Tj,Tk}.
GalleryProgram matmul_tiled();

/// Fig. 1(c): fused two-index transform with scalar T.
/// B(m,n) += C1(m,i) * sum_j C2(n,j)*A(i,j); bounds {NI,NJ,NM,NN}.
GalleryProgram two_index_fused();

/// Fig. 6: tiled fused two-index transform; tiles {Ti,Tj,Tm,Tn}.
/// Statement labels follow the paper (S2, S5, S7, S9).
GalleryProgram two_index_tiled();

/// Fig. 1(a): unfused two-index transform with full intermediate T[n,i].
GalleryProgram two_index_unfused();

}  // namespace sdlo::ir
