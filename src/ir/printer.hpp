// Pretty-printer for Program trees, rendering both a code-like view
// (Figs. 2/6 of the paper) and a parse-tree view (Fig. 7).
#pragma once

#include <iosfwd>
#include <string>

#include "ir/program.hpp"

namespace sdlo::ir {

/// Renders code-style, e.g.
///   for iT, nT {
///     for iI, nI { S5: T[iI,nI] = ... }
///     ...
///   }
void print_code(const Program& p, std::ostream& os);

/// print_code into a string.
std::string to_code_string(const Program& p);

/// Renders the loop-structure tree with one node per line (Fig. 7 view).
void print_tree(const Program& p, std::ostream& os);

/// Renders one reference, e.g. "B[mT+mI,nT+nI]".
std::string ref_to_string(const ArrayRef& ref);

}  // namespace sdlo::ir
