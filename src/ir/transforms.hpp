// Loop transformations on Program trees.
//
// The paper applies tiling to TCE-generated nests before running the model
// (§4.1, §6). tile_nest() strip-mines chosen loops of a perfect nest and
// hoists all tile loops outward in original order (the classical rectangular
// tiling of Fig. 2). interchange() permutes the loops of one band.
// Transformations return new Programs; inputs are never mutated.
#pragma once

#include <string>
#include <vector>

#include "ir/gallery.hpp"
#include "ir/program.hpp"

namespace sdlo::ir {

/// Tiling directive: split loop `var` by a new symbolic tile size
/// `tile_sym`; the tile loop is named var+"T" and the intra loop var+"I".
struct TileSpec {
  std::string var;
  std::string tile_sym;
};

/// Tiles a single perfect nest (root -> one band -> one statement). Loops in
/// `specs` are split; tile loops come first (in original loop order),
/// followed by all intra-tile/unsplit loops (in original order). Subscripts
/// using a split var v become the composed pair {vT, vI}. The tile size must
/// divide the loop extent at binding time (recorded in tile_of).
GalleryProgram tile_nest(const GalleryProgram& g,
                         const std::vector<TileSpec>& specs);

/// Reorders the loops of band `band` according to `perm` (a permutation of
/// 0..k-1 giving the new outer-to-inner order in terms of old positions).
Program interchange(const Program& p, NodeId band,
                    const std::vector<int>& perm);

}  // namespace sdlo::ir
