#include "ir/gallery.hpp"

#include "support/check.hpp"

namespace sdlo::ir {

namespace {

using sym::Expr;

Expr S(const std::string& name) { return Expr::symbol(name); }

ArrayRef read(std::string array, std::vector<Subscript> subs) {
  return ArrayRef{std::move(array), std::move(subs), AccessMode::kRead};
}

ArrayRef write(std::string array, std::vector<Subscript> subs) {
  return ArrayRef{std::move(array), std::move(subs), AccessMode::kWrite};
}

Subscript sub(std::vector<std::string> vars) {
  return Subscript{std::move(vars)};
}

}  // namespace

sym::Env GalleryProgram::make_env(
    const std::vector<std::int64_t>& bound_values,
    const std::vector<std::int64_t>& tile_values) const {
  SDLO_CHECK(bound_values.size() == bounds.size(),
             "wrong number of bound values");
  SDLO_CHECK(tile_values.size() == tiles.size(),
             "wrong number of tile values");
  sym::Env env;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    SDLO_CHECK(bound_values[i] > 0, "bounds must be positive");
    env[bounds[i]] = bound_values[i];
  }
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    SDLO_CHECK(tile_values[i] > 0, "tile sizes must be positive");
    env[tiles[i]] = tile_values[i];
    const auto& bound_sym = tile_of.at(tiles[i]);
    const std::int64_t bound = env.at(bound_sym);
    if (bound % tile_values[i] != 0) {
      throw Error("tile size " + std::to_string(tile_values[i]) +
                  " does not divide bound " + bound_sym + "=" +
                  std::to_string(bound));
    }
  }
  return env;
}

GalleryProgram matmul() {
  GalleryProgram g;
  g.bounds = {"NI", "NJ", "NK"};
  Program& p = g.prog;
  NodeId band = p.add_band(Program::kRoot, {Loop{"i", S("NI")},
                                            Loop{"j", S("NJ")},
                                            Loop{"k", S("NK")}});
  p.add_statement(
      band,
      Statement{"S1",
                {read("A", {sub({"i"}), sub({"j"})}),
                 read("B", {sub({"j"}), sub({"k"})}),
                 read("C", {sub({"i"}), sub({"k"})}),
                 write("C", {sub({"i"}), sub({"k"})})}});
  p.validate();
  return g;
}

GalleryProgram matmul_tiled() {
  GalleryProgram g;
  g.bounds = {"NI", "NJ", "NK"};
  g.tiles = {"Ti", "Tj", "Tk"};
  g.tile_of = {{"Ti", "NI"}, {"Tj", "NJ"}, {"Tk", "NK"}};
  Program& p = g.prog;
  NodeId band = p.add_band(
      Program::kRoot,
      {Loop{"iT", sym::floor_div(S("NI"), S("Ti"))},
       Loop{"jT", sym::floor_div(S("NJ"), S("Tj"))},
       Loop{"kT", sym::floor_div(S("NK"), S("Tk"))},
       Loop{"iI", S("Ti")}, Loop{"jI", S("Tj")}, Loop{"kI", S("Tk")}});
  p.add_statement(
      band,
      Statement{"S1",
                {read("A", {sub({"iT", "iI"}), sub({"jT", "jI"})}),
                 read("B", {sub({"jT", "jI"}), sub({"kT", "kI"})}),
                 read("C", {sub({"iT", "iI"}), sub({"kT", "kI"})}),
                 write("C", {sub({"iT", "iI"}), sub({"kT", "kI"})})}});
  p.validate();
  return g;
}

GalleryProgram two_index_fused() {
  GalleryProgram g;
  g.bounds = {"NI", "NJ", "NM", "NN"};
  Program& p = g.prog;
  // for i, n { t = 0; for j { t += C2[n,j]*A[i,j] }
  //            for m { B[m,n] += C1[m,i]*t } }
  NodeId outer =
      p.add_band(Program::kRoot, {Loop{"i", S("NI")}, Loop{"n", S("NN")}});
  p.add_statement(outer, Statement{"S1", {write("t", {})}});
  NodeId jb = p.add_band(outer, {Loop{"j", S("NJ")}});
  p.add_statement(jb, Statement{"S2",
                                {read("C2", {sub({"n"}), sub({"j"})}),
                                 read("A", {sub({"i"}), sub({"j"})}),
                                 read("t", {}), write("t", {})}});
  NodeId mb = p.add_band(outer, {Loop{"m", S("NM")}});
  p.add_statement(mb, Statement{"S3",
                                {read("C1", {sub({"m"}), sub({"i"})}),
                                 read("t", {}),
                                 read("B", {sub({"m"}), sub({"n"})}),
                                 write("B", {sub({"m"}), sub({"n"})})}});
  p.validate();
  return g;
}

GalleryProgram two_index_unfused() {
  GalleryProgram g;
  g.bounds = {"NI", "NJ", "NM", "NN"};
  Program& p = g.prog;
  // for i,n,j: T[n,i] += C2[n,j]*A[i,j]
  // for i,n,m: B[m,n] += C1[m,i]*T[n,i]
  NodeId first = p.add_band(Program::kRoot, {Loop{"i", S("NI")},
                                             Loop{"n", S("NN")},
                                             Loop{"j", S("NJ")}});
  p.add_statement(first,
                  Statement{"S1",
                            {read("C2", {sub({"n"}), sub({"j"})}),
                             read("A", {sub({"i"}), sub({"j"})}),
                             read("T", {sub({"n"}), sub({"i"})}),
                             write("T", {sub({"n"}), sub({"i"})})}});
  NodeId second = p.add_band(Program::kRoot, {Loop{"i", S("NI")},
                                              Loop{"n", S("NN")},
                                              Loop{"m", S("NM")}});
  p.add_statement(second,
                  Statement{"S2",
                            {read("C1", {sub({"m"}), sub({"i"})}),
                             read("T", {sub({"n"}), sub({"i"})}),
                             read("B", {sub({"m"}), sub({"n"})}),
                             write("B", {sub({"m"}), sub({"n"})})}});
  p.validate();
  return g;
}

GalleryProgram two_index_tiled() {
  GalleryProgram g;
  g.bounds = {"NI", "NJ", "NM", "NN"};
  g.tiles = {"Ti", "Tj", "Tm", "Tn"};
  g.tile_of = {{"Ti", "NI"}, {"Tj", "NJ"}, {"Tm", "NM"}, {"Tn", "NN"}};
  Program& p = g.prog;
  const Expr mT_extent = sym::floor_div(S("NM"), S("Tm"));
  const Expr nT_extent = sym::floor_div(S("NN"), S("Tn"));
  const Expr iT_extent = sym::floor_div(S("NI"), S("Ti"));
  const Expr jT_extent = sym::floor_div(S("NJ"), S("Tj"));

  // S1. FOR mT, nT, mI, nI:  S2. B[mT+mI, nT+nI] = 0
  NodeId init = p.add_band(Program::kRoot,
                           {Loop{"mT", mT_extent}, Loop{"nT", nT_extent},
                            Loop{"mI", S("Tm")}, Loop{"nI", S("Tn")}});
  p.add_statement(
      init, Statement{"S2", {write("B", {sub({"mT", "mI"}),
                                         sub({"nT", "nI"})})}});

  // S3. FOR iT, nT
  NodeId outer = p.add_band(Program::kRoot,
                            {Loop{"iT", iT_extent}, Loop{"nT", nT_extent}});

  //   S4. FOR iI, nI:  S5. T[iI,nI] = 0
  NodeId zero = p.add_band(outer, {Loop{"iI", S("Ti")}, Loop{"nI", S("Tn")}});
  p.add_statement(zero,
                  Statement{"S5", {write("T", {sub({"iI"}), sub({"nI"})})}});

  //   S6. FOR jT, iI, nI, jI:
  //     S7. T[iI,nI] += A[iT+iI,jT+jI] * C2[nT+nI,jT+jI]
  NodeId prod = p.add_band(outer,
                           {Loop{"jT", jT_extent}, Loop{"iI", S("Ti")},
                            Loop{"nI", S("Tn")}, Loop{"jI", S("Tj")}});
  p.add_statement(
      prod,
      Statement{"S7",
                {read("A", {sub({"iT", "iI"}), sub({"jT", "jI"})}),
                 read("C2", {sub({"nT", "nI"}), sub({"jT", "jI"})}),
                 read("T", {sub({"iI"}), sub({"nI"})}),
                 write("T", {sub({"iI"}), sub({"nI"})})}});

  //   S8. FOR mT, iI, nI, mI:
  //     S9. B[mT+mI,nT+nI] += T[iI,nI] * C1[mT+mI,iT+iI]
  NodeId cons = p.add_band(outer,
                           {Loop{"mT", mT_extent}, Loop{"iI", S("Ti")},
                            Loop{"nI", S("Tn")}, Loop{"mI", S("Tm")}});
  p.add_statement(
      cons,
      Statement{"S9",
                {read("T", {sub({"iI"}), sub({"nI"})}),
                 read("C1", {sub({"mT", "mI"}), sub({"iT", "iI"})}),
                 read("B", {sub({"mT", "mI"}), sub({"nT", "nI"})}),
                 write("B", {sub({"mT", "mI"}), sub({"nT", "nI"})})}});
  p.validate();
  return g;
}

}  // namespace sdlo::ir
