// Quickstart: author a loop nest, predict its cache misses at compile
// time, and confirm against the trace-driven simulator.
//
//   $ ./quickstart
//
// Walks through the library's core workflow (§4 of the paper):
//   1. write an imperfectly nested loop program in the textual IR,
//   2. run the stack-distance analyzer once (symbolic, size-independent),
//   3. bind concrete sizes and predict misses for any cache capacity,
//   4. cross-check with the fully-associative LRU simulator.
#include <iostream>

#include "cachesim/sim.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "model/analyzer.hpp"
#include "trace/walker.hpp"

int main() {
  using namespace sdlo;

  // 1. A fused producer/consumer pair with a tile buffer — exactly the
  //    class of imperfect nests the TCE emits (Fig. 1/Fig. 6 style).
  const std::string source = R"(
    for i<N> {
      for j<N>  { S1: T[j] = 0 }
      for k<N>, j<N> { S2: T[j] += A[i,k] * B[k,j] }
      for j<N>  { S3: C[i,j] += T[j] }
    }
  )";
  ir::Program prog = ir::parse_program(source);
  std::cout << "Program:\n" << ir::to_code_string(prog) << "\n";

  // 2. Symbolic analysis: reuse partitions + stack-distance expressions.
  const auto analysis = model::analyze(prog);
  std::cout << "Reuse partitions:\n";
  for (const auto& row : model::symbolic_report(analysis)) {
    std::cout << "  " << row.description << "\n      distance = "
              << (row.infinite ? "inf" : sym::to_string(row.total)) << "\n";
  }

  // 3 + 4. Bind N, sweep cache sizes, compare with the simulator.
  const sym::Env env{{"N", 64}};
  trace::CompiledProgram cp(prog, env);
  std::cout << "\nN = 64: " << cp.total_accesses() << " accesses, "
            << cp.address_space_size() << " distinct elements\n\n";
  std::cout << "cache(elems)   predicted     simulated\n";
  for (std::int64_t cap : {64, 256, 1024, 4096, 16384}) {
    const auto pred = model::predict_misses(analysis, env, cap);
    const auto sim = cachesim::simulate_lru(cp, cap);
    std::cout << "  " << cap << "\t\t" << pred.misses << "\t\t"
              << sim.misses
              << (static_cast<std::uint64_t>(pred.misses) == sim.misses
                      ? "   (exact)"
                      : "   (MISMATCH)")
              << "\n";
  }
  return 0;
}
