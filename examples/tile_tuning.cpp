// Tile tuning: find cache-optimal tile sizes for the tiled two-index
// transform with the §6 pruned search, then validate the choice by
// simulation — the workflow a TCE-style compiler would run at code
// generation time.
//
//   $ ./tile_tuning [--n 256] [--cache_kb 64]
#include <iostream>

#include "cachesim/sim.hpp"
#include "ir/gallery.hpp"
#include "model/analyzer.hpp"
#include "support/cli.hpp"
#include "support/string_util.hpp"
#include "tile/fast_model.hpp"
#include "tile/search.hpp"
#include "trace/walker.hpp"

int main(int argc, char** argv) {
  using namespace sdlo;
  CommandLine cli(argc, argv);
  cli.flag("n", "loop bounds (default 256)");
  cli.flag("cache_kb", "cache size in KB (default 64)");
  if (!cli.finish()) return 0;
  const std::int64_t n = cli.get_int("n", 256);
  const std::int64_t cap = cli.get_int("cache_kb", 64) * 1024 / 8;

  auto g = ir::two_index_tiled();
  const auto an = model::analyze(g.prog);
  tile::FastMissModel fast(an);

  tile::SearchOptions opts;
  opts.max_tile = n;
  const auto result = tile::search_tiles(g, fast, {n, n, n, n}, cap, opts);

  std::cout << "Search over (Ti,Tj,Tm,Tn) for N=" << n << ", cache "
            << cap << " elements: " << result.evaluations
            << " model evaluations\n\nTop candidates:\n";
  for (const auto& c : result.candidates) {
    std::cout << "  (" << c.tiles[0] << "," << c.tiles[1] << ","
              << c.tiles[2] << "," << c.tiles[3] << ")  ~"
              << with_commas(static_cast<std::int64_t>(c.modeled_misses))
              << " modeled misses\n";
  }

  std::cout << "\nSimulated misses (ground truth):\n";
  auto simulate = [&](const std::vector<std::int64_t>& tiles) {
    trace::CompiledProgram cp(g.prog, g.make_env({n, n, n, n}, tiles));
    return cachesim::simulate_lru(cp, cap).misses;
  };
  const auto best = simulate(result.best.tiles);
  std::cout << "  searched tile: " << with_commas(
                   static_cast<std::int64_t>(best))
            << "\n";
  for (std::int64_t eq : {32, 64, 128}) {
    if (eq > n) continue;
    const auto m = simulate({eq, eq, eq, eq});
    std::cout << "  equal (" << eq << "^4):  "
              << with_commas(static_cast<std::int64_t>(m)) << "  ("
              << format_double(static_cast<double>(m) /
                                   static_cast<double>(best),
                               2)
              << "x)\n";
  }
  return 0;
}
