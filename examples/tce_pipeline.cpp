// TCE pipeline: from a tensor contraction expression to analyzed loop
// code — the §2 front end end-to-end.
//
//   $ ./tce_pipeline
//
// Shows: operation minimization of the four-index transform (O(V^8) ->
// O(V^5)), fusion of the two-index transform (intermediate contracted to a
// scalar, Fig. 1), and the stack-distance analysis of the lowered code.
#include <iostream>

#include "ir/printer.hpp"
#include "model/analyzer.hpp"
#include "tce/expr.hpp"
#include "tce/lower.hpp"
#include "tce/opmin.hpp"

int main() {
  using namespace sdlo;

  // --- Four-index transform: operation minimization. ---------------------
  const auto four = tce::parse_contraction(
      "B[a,b,c,d] = sum(p,q,r,s) "
      "C1[a,p] * C2[b,q] * C3[c,r] * C4[d,s] * A[p,q,r,s]");
  tce::IndexExtents ext4;
  for (const auto& idx : four.all_indices()) {
    ext4[idx] = sym::Expr::symbol("V");
  }
  const auto plan4 = tce::optimize_order(four, ext4, {{"V", 100}});
  std::cout << "Four-index transform " << tce::to_string(four)
            << "\nOptimal binarization (V=100):\n"
            << tce::to_string(plan4)
            << "(the paper's O(V^8) -> O(V^5) reduction)\n\n";

  // Greedy pairwise chain fusion: two of the three V^4 intermediates
  // contract to scalars.
  std::cout << "Intermediate storage: unfused "
            << sym::to_string(tce::intermediate_footprint(plan4, ext4))
            << " elements, greedy-fused "
            << sym::to_string(tce::fused_chain_footprint(plan4, ext4))
            << " elements\n";
  auto fused4 = tce::lower_chain_greedy(plan4, ext4);
  std::cout << "Greedy-fused four-index lowering:\n"
            << ir::to_code_string(fused4.prog) << "\n";

  // --- Two-index transform: fusion. ---------------------------------------
  const auto two = tce::parse_contraction(
      "B[m,n] = sum(i,j) C1[m,i] * C2[n,j] * A[i,j]");
  tce::IndexExtents ext2;
  for (const auto& idx : two.all_indices()) {
    ext2[idx] = sym::Expr::symbol("V");
  }
  const auto plan2 = tce::optimize_order(two, ext2, {{"V", 100}});
  std::cout << "Two-index transform plan:\n" << tce::to_string(plan2);
  std::cout << "Intermediate footprint before fusion: "
            << sym::to_string(tce::intermediate_footprint(plan2, ext2))
            << " elements\n\n";

  auto unfused = tce::lower_unfused(plan2, ext2);
  auto fused = tce::lower_fused_pair(plan2, ext2);
  std::cout << "Unfused lowering (Fig. 1a):\n"
            << ir::to_code_string(unfused.prog)
            << "\nFused lowering (Fig. 1c — intermediate is a scalar):\n"
            << ir::to_code_string(fused.prog) << "\n";

  // --- Analyze the fused code. --------------------------------------------
  const auto an = model::analyze(fused.prog);
  sym::Env env;
  for (const auto& b : fused.bounds) env[b] = 256;
  std::cout << "Misses of the fused code at V=256:\n";
  for (std::int64_t cap : {512, 8192, 32768}) {
    std::cout << "  cache " << cap << " elems: "
              << model::predict_misses(an, env, cap).misses << "\n";
  }
  return 0;
}
