// Coupled-cluster term: the quantum-chemistry workload class the paper's
// introduction motivates (accurate electronic structure models, §2/§7).
//
//   $ ./ccsd_term [--o 16 --v 64]
//
// Takes a CCSD-doubles-like ring term with two T1 amplitudes,
//
//   R[a,b,i,j] = sum(c,k) T1[c,i] * T1[a,k] * V[k,b,c,j]
//
// with occupied indices i,j,k (range O) and virtual indices a,b,c
// (range V >> O, as in the paper: O in 10..300, V in 50..1000), and runs
// the full TCE pipeline: operation minimization, fusion, stack-distance
// analysis, and a miss-count comparison of the fused vs unfused lowering
// across cache sizes — validated against the simulator.
#include <iostream>

#include "cachesim/sim.hpp"
#include "ir/printer.hpp"
#include "model/analyzer.hpp"
#include "support/cli.hpp"
#include "support/string_util.hpp"
#include "tce/expr.hpp"
#include "tce/lower.hpp"
#include "tce/opmin.hpp"
#include "trace/walker.hpp"

int main(int argc, char** argv) {
  using namespace sdlo;
  CommandLine cli(argc, argv);
  cli.flag("o", "occupied-orbital range O (default 16)");
  cli.flag("v", "virtual-orbital range V (default 64)");
  if (!cli.finish()) return 0;
  const std::int64_t O = cli.get_int("o", 16);
  const std::int64_t V = cli.get_int("v", 64);

  const auto term = tce::parse_contraction(
      "R[a,b,i,j] = sum(c,k) T1[c,i] * T1a[a,k] * V2[k,b,c,j]");
  tce::IndexExtents ext;
  for (const char* occ : {"i", "j", "k"}) {
    ext[occ] = sym::Expr::symbol("O");
  }
  for (const char* vir : {"a", "b", "c"}) {
    ext[vir] = sym::Expr::symbol("Vx");
  }
  const sym::Env sizes{{"O", O}, {"Vx", V}};

  const auto plan = tce::optimize_order(term, ext, sizes);
  std::cout << "CCSD ring term " << tce::to_string(term)
            << "\nO=" << O << ", V=" << V << "\n\nOptimal binarization:\n"
            << tce::to_string(plan) << "\n";

  auto unfused = tce::lower_unfused(plan, ext);
  std::cout << "Unfused lowering:\n" << ir::to_code_string(unfused.prog);

  ir::GalleryProgram fused;
  bool have_fused = true;
  try {
    fused = tce::lower_fused_pair(plan, ext);
    std::cout << "\nFused lowering (intermediate contracted):\n"
              << ir::to_code_string(fused.prog);
  } catch (const UnsupportedProgram&) {
    have_fused = false;
    std::cout << "\n(plan is not a two-step chain; fusion skipped)\n";
  }

  auto misses_of = [&](const ir::GalleryProgram& g, std::int64_t cap) {
    sym::Env env;
    for (const auto& b : g.bounds) {
      env[b] = b.find("_i") != std::string::npos ||
                       b.find("_j") != std::string::npos ||
                       b.find("_k") != std::string::npos
                   ? O
                   : V;
    }
    const auto an = model::analyze(g.prog);
    const auto pred = model::predict_misses(an, env, cap);
    trace::CompiledProgram cp(g.prog, env);
    const auto sim = cachesim::simulate_lru(cp, cap);
    SDLO_CHECK(static_cast<std::uint64_t>(pred.misses) == sim.misses,
               "model/simulator disagreement");
    return pred.misses;
  };

  std::cout << "\nMisses (model == simulator, element-granularity "
               "fully-assoc LRU):\n";
  std::cout << "cache(elems)   unfused" << (have_fused ? "        fused" : "")
            << "\n";
  for (std::int64_t cap : {512, 4096, 32768}) {
    std::cout << "  " << cap << "\t" << with_commas(misses_of(unfused, cap));
    if (have_fused) {
      std::cout << "\t" << with_commas(misses_of(fused, cap));
    }
    std::cout << "\n";
  }
  return 0;
}
