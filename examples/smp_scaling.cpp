// SMP scaling: model the parallel two-index transform with the §7 cost
// models, choosing tile sizes with the sequential optimizer applied to each
// processor's slice (Fig. 9's reduction).
//
//   $ ./smp_scaling [--range 512]
#include <iostream>

#include "ir/gallery.hpp"
#include "model/analyzer.hpp"
#include "parallel/smp_model.hpp"
#include "support/cli.hpp"
#include "support/string_util.hpp"
#include "tile/fast_model.hpp"
#include "tile/search.hpp"

int main(int argc, char** argv) {
  using namespace sdlo;
  CommandLine cli(argc, argv);
  cli.flag("range", "loop range (default 512)");
  cli.flag("cache_kb", "per-CPU cache in KB (default 64)");
  if (!cli.finish()) return 0;
  const std::int64_t n = cli.get_int("range", 512);
  const std::int64_t cap = cli.get_int("cache_kb", 64) * 1024 / 8;

  auto g = ir::two_index_tiled();
  const auto an = model::analyze(g.prog);
  parallel::CostCalibration cal;  // default machine coefficients
  model::PredictOptions popts;
  popts.enum_limit = 1 << 16;

  // Tile for the per-processor slice (the paper's reduction: each CPU
  // solves the sequential problem on its slice).
  tile::FastMissModel fast(an);
  tile::SearchOptions sopts;
  sopts.max_tile = n;

  std::cout << "Two-index transform, N=" << n << ", per-CPU cache " << cap
            << " elements\n\n";
  std::cout << "P   slice-tuned tile     per-CPU misses   bus-limited(s)  "
               "infinite-bw(s)\n";
  for (int p : {1, 2, 4, 8}) {
    // Tune tiles for the slice the processor actually executes.
    const std::vector<std::int64_t> slice{n, n, n, n / p};
    const auto tuned = tile::search_tiles(g, fast, slice, cap, sopts);
    const auto est = parallel::estimate_smp(an, g, "NN", {n, n, n, n},
                                            tuned.best.tiles, p, cap, cal,
                                            popts);
    std::cout << p << "   (" << est.tiles[0] << "," << est.tiles[1] << ","
              << est.tiles[2] << "," << est.tiles[3] << ")"
              << "\t\t" << with_commas(est.per_proc_misses) << "\t "
              << format_double(est.seconds_bus, 3) << "\t         "
              << format_double(est.seconds_infinite, 3) << "\n";
  }
  std::cout << "\nBoth §7 limit models shrink with P; the bus-limited\n"
               "model saturates when total traffic dominates.\n";
  return 0;
}
